"""Shard-plan certification: static provers for row-block partitioning.

The future multi-device serving cluster splits a CRSD SpMV into N
row-block shards, each executing the same generated codelets over the
segments (and scatter rows) whose start row falls inside its block,
against the full ``x``/``y`` address space.  For diagonal sparse
matrices that split is *statically* safe: the x elements shard ``i``
reads are exactly the halo interval

    [row_start + min_offset, row_end + max_offset)   clipped to bounds

derivable from the pattern's extreme diagonal offsets — no per-request
verification needed.  This module proves it, the same way
:func:`~repro.gpu_kernels.fused.certify_plan` gates the fused engine,
with four provers over the symbolic affine access model:

``shard-halo``
    every x read of shard ``i`` (affine dia loads, AD tile staging and
    scatter gathers alike) lies inside the shard's declared halo
    interval.  ELL fill slots are exempt: their gather multiplies by a
    structurally zero coefficient, so the value read is irrelevant and
    a cluster shard may serve it from any resident element.
``shard-disjoint``
    the per-shard y write sets (dia stores *and* scatter stores) stay
    inside their declared row blocks, are pairwise disjoint and union
    to exactly the unsharded write set — a segment straddling a shard
    boundary is caught here.
``shard-trace``
    the sum of the per-shard closed-form
    :class:`~repro.ocl.trace.KernelTrace` predictions equals the
    whole-matrix prediction: the dia phase counter-for-counter, the
    scatter phase modulo an exactly-computed wavefront repacking delta,
    and the L2-adjusted load transactions modulo the exactly-accounted
    halo re-read term (x lines fetched again because neighbouring
    shards' private L2s cannot share residency).
``shard-order``
    scatter overwrites stay deterministic: the per-shard scatter slices
    concatenate to the full sorted row list, and no scatter row's dia
    coverage executes in a *later* shard than its overwrite.

A plan that cannot be proven is *declined* with findings naming the
prover — never silently wrong.  Certification never raises for an
unprovable plan; a prover crash propagates to the caller.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analyze.coalescing import _count_affine, _count_indirect, predict_trace
from repro.analyze.model import KernelModel, build_model
from repro.analyze.report import Finding
from repro.codegen.plan import (
    GroupPlan,
    KernelPlan,
    RegionPlan,
    ScatterPlan,
    build_plan,
)
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.trace import KernelTrace

__all__ = [
    "ShardCertificate",
    "build_shard_subplan",
    "certify_shard_plan",
    "shard_segment_range",
]

#: trace counters that must be conserved exactly under any row-block
#: partition (work is work, wherever it runs)
INVARIANT_COUNTERS = (
    "flops",
    "global_load_bytes_useful",
    "global_store_bytes_useful",
    "local_load_bytes",
    "local_store_bytes",
    "barriers",
)

_TRACE_FIELDS = tuple(f.name for f in dataclasses.fields(KernelTrace))


def shard_segment_range(start_row: int, nrs: int, mrows: int,
                        row_lo: int, row_hi: int) -> Tuple[int, int]:
    """Segments of a region owned by the row block ``[row_lo, row_hi)``.

    A segment belongs to the shard containing its *start* row, so the
    ranges of consecutive blocks partition ``[0, nrs)`` even when a
    boundary cuts a segment (the disjointness prover then rejects the
    plan — ownership stays well defined either way).
    """
    seg_lo = max(0, -(-(row_lo - start_row) // mrows))
    seg_hi = max(0, -(-(row_hi - start_row) // mrows))
    seg_lo = min(seg_lo, nrs)
    seg_hi = min(max(seg_lo, seg_hi), nrs)
    return seg_lo, seg_hi


def build_shard_subplan(plan: KernelPlan, row_start: int, row_end: int,
                        scatter_start: int = 0,
                        scatter_end: int = 0) -> KernelPlan:
    """The :class:`KernelPlan` of one shard, in *absolute* addressing.

    Every baked constant stays absolute — ``slab_base`` advances by the
    skipped segments' slots, ``start_row``/``colv`` by the skipped
    rows — so the shard's codelets execute against the full ``dia_val``
    / ``x`` / ``y`` buffers and compute bit-identically to the
    corresponding groups of the unsharded launch.  Only the scatter
    side structure is re-packed per shard (rows
    ``[scatter_start, scatter_end)`` of the sorted ELL arrays).
    """
    regions: List[RegionPlan] = []
    gid_base = 0
    for r in plan.regions:
        seg_lo, seg_hi = shard_segment_range(
            r.start_row, r.nrs, r.mrows, row_start, row_end)
        if seg_hi <= seg_lo:
            continue
        shift = seg_lo * r.mrows
        groups = tuple(
            GroupPlan(kind=g.kind, d_first=g.d_first, offsets=g.offsets,
                      colv=tuple(c + shift for c in g.colv))
            for g in r.groups
        )
        regions.append(RegionPlan(
            index=len(regions),
            gid_base=gid_base,
            slab_base=r.slab_base + seg_lo * r.nnz_per_segment,
            start_row=r.start_row + shift,
            nrs=seg_hi - seg_lo,
            mrows=r.mrows,
            nnz_per_segment=r.nnz_per_segment,
            groups=groups,
            signature=r.signature,
        ))
        gid_base += seg_hi - seg_lo
    return KernelPlan(
        nrows=plan.nrows,
        ncols=plan.ncols,
        mrows=plan.mrows,
        regions=tuple(regions),
        scatter=ScatterPlan(num_rows=max(0, scatter_end - scatter_start),
                            width=plan.scatter.width),
        use_local_memory=plan.use_local_memory,
        nvec=plan.nvec,
    )


# ----------------------------------------------------------------------
# certificate
# ----------------------------------------------------------------------
@dataclass
class ShardCertificate:
    """The provers' verdict on one row-block shard plan.

    ``ok`` gates shard-by-shard execution
    (:class:`~repro.shard.executor.ShardedSpMV` refuses uncertified
    plans); the findings name the violated prover otherwise.  A
    certified plan additionally carries the per-shard L2-adjusted trace
    predictions, the scatter wavefront-repacking delta and the exact
    halo re-read term, so the conservation statement

        sum(per_shard_traces) == whole_trace + scatter_repack
                                 + halo re-read (load transactions)

    is auditable from the certificate alone.
    """

    ok: bool
    num_shards: int
    shard_plan: object = None
    findings: List[Finding] = field(default_factory=list)
    subplans: Tuple[KernelPlan, ...] = ()
    #: per-shard L2-adjusted closed-form predictions (certified plans)
    per_shard_traces: Tuple[KernelTrace, ...] = ()
    #: unsharded L2-adjusted closed-form prediction
    whole_trace: Optional[KernelTrace] = None
    #: scatter-phase counter deltas caused by re-packing the scatter
    #: rows into per-shard wavefronts (sum(shards) - whole, exact)
    scatter_repack: Dict[str, int] = field(default_factory=dict)
    #: extra DRAM load transactions of per-shard private L2s vs one
    #: shared cache (signed, exact); None when not certified
    halo_reread_transactions: Optional[int] = None

    @property
    def reasons(self) -> Tuple[str, ...]:
        """One line per violated prover (empty when certified)."""
        return tuple(f"{f.check}: {f.where}: {f.message}"
                     for f in self.findings if f.severity == "error")

    def _trace_dict(self, tr: KernelTrace) -> Dict[str, int]:
        return {name: getattr(tr, name) for name in _TRACE_FIELDS}

    def to_dict(self) -> Dict:
        """JSON-serialisable certificate (the CLI/plan-cache payload)."""
        out: Dict = {
            "ok": self.ok,
            "num_shards": self.num_shards,
            "findings": [f.to_dict() for f in self.findings],
            "reasons": list(self.reasons),
            "scatter_repack": dict(self.scatter_repack),
            "halo_reread_transactions": self.halo_reread_transactions,
        }
        if self.shard_plan is not None and hasattr(self.shard_plan, "to_dict"):
            out["plan"] = self.shard_plan.to_dict()
        if self.whole_trace is not None:
            out["whole_trace"] = self._trace_dict(self.whole_trace)
        if self.per_shard_traces:
            out["per_shard_traces"] = [self._trace_dict(t)
                                       for t in self.per_shard_traces]
        return out


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def certify_shard_plan(
    matrix,
    shard_plan,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    use_local_memory: bool = True,
    nvec: int = 1,
) -> ShardCertificate:
    """Run the four shard provers over ``shard_plan`` for ``matrix``.

    ``matrix`` must be a :class:`~repro.core.crsd.CRSDMatrix` — the
    DIA/ELL/HYB rungs of the degradation ladder have no symbolic access
    model, so their plans are declined cleanly with the halo prover
    named.  Never raises for an unprovable plan; a prover crash
    propagates (callers file an incident for that case).
    """
    from repro.core.crsd import CRSDMatrix

    cert = ShardCertificate(ok=False, num_shards=shard_plan.num_shards,
                            shard_plan=shard_plan)
    if not isinstance(matrix, CRSDMatrix):
        fmt = getattr(matrix, "name", type(matrix).__name__)
        cert.findings.append(Finding(
            "shard-halo", "error", f"format {fmt}",
            "no symbolic access model for this format; halo coverage "
            "cannot be proven (only CRSD plans are certifiable)"))
        return cert
    plan = build_plan(matrix, use_local_memory=use_local_memory, nvec=nvec)
    if (shard_plan.nrows, shard_plan.ncols) != (plan.nrows, plan.ncols):
        cert.findings.append(Finding(
            "shard-disjoint", "error", "plan shape",
            f"shard plan covers {shard_plan.nrows}x{shard_plan.ncols} but "
            f"the matrix is {plan.nrows}x{plan.ncols}"))
        return cert
    whole_model = build_model(plan, precision=precision,
                              scatter_colval=matrix.scatter_colval,
                              scatter_rowno=matrix.scatter_rowno)
    subplans: List[KernelPlan] = []
    submodels: List[KernelModel] = []
    for spec in shard_plan.shards:
        sp = build_shard_subplan(plan, spec.row_start, spec.row_end,
                                 spec.scatter_start, spec.scatter_end)
        subplans.append(sp)
        submodels.append(build_model(
            sp, precision=precision,
            scatter_colval=matrix.scatter_colval[
                spec.scatter_start:spec.scatter_end],
            scatter_rowno=matrix.scatter_rowno[
                spec.scatter_start:spec.scatter_end]))
    cert.subplans = tuple(subplans)
    _check_halo(matrix, shard_plan, submodels, cert)
    _check_disjoint(whole_model, shard_plan, submodels, cert)
    _check_order(plan, matrix, shard_plan, cert)
    _check_trace(whole_model, submodels, device, cert)
    cert.ok = not any(f.severity == "error" for f in cert.findings)
    if not cert.ok:
        # an uncertified plan carries no conservation terms
        cert.per_shard_traces = ()
        cert.whole_trace = None
        cert.halo_reread_transactions = None
    return cert


# ----------------------------------------------------------------------
# prover 1: halo coverage
# ----------------------------------------------------------------------
def _check_halo(matrix, shard_plan, submodels: Sequence[KernelModel],
                cert: ShardCertificate) -> None:
    ncols = int(matrix.ncols)
    occ = matrix.scatter_occupancy
    for spec, model in zip(shard_plan.shards, submodels):
        where = f"shard {spec.index}"
        lo, hi = int(spec.halo_lo), int(spec.halo_hi)
        for rm in model.regions:
            for acc in rm.accesses:
                if acc.buffer != "x" or acc.nsegs <= 0 or acc.lanes <= 0:
                    continue
                # x guards are [vec_base, vec_base + ncols); fold the
                # SpMM vector stride out so the halo compares in
                # x-element space
                vec_base = acc.guard_lo if acc.guard_lo is not None else 0
                alo, ahi = acc.guarded_range()
                if alo > ahi:
                    continue  # every lane predicated off
                if alo - vec_base < lo or ahi - vec_base >= hi:
                    cert.findings.append(Finding(
                        "shard-halo", "error", f"{where} / {acc.label}",
                        f"x read range [{alo - vec_base}, "
                        f"{ahi - vec_base}] escapes the halo "
                        f"[{lo}, {hi})"))
        if model.scatter is None:
            continue
        sm = model.scatter
        rows = np.arange(spec.scatter_start, spec.scatter_end,
                         dtype=np.int64)
        for ind in sm.indirect:
            if ind.buffer != "x":
                continue
            if ind.index_grid is None:
                cert.findings.append(Finding(
                    "shard-halo", "error", f"{where} / {ind.label}",
                    "scatter gather carries no baked index data; halo "
                    "coverage cannot be proven"))
                continue
            grid = np.asarray(ind.index_grid, dtype=np.int64)
            active = (ind.active if ind.active is not None
                      else np.ones(grid.shape, dtype=bool))
            # exempt ELL fill slots: their stored coefficient is
            # structurally zero, so the gathered value never matters
            k = _ell_column_of(ind.label)
            occupied = active.copy()
            if k is not None and occ.size and rows.size:
                pos = (np.arange(sm.num_groups, dtype=np.int64)[:, None]
                       * sm.lanes
                       + np.arange(sm.lanes, dtype=np.int64)[None, :])
                safe = np.minimum(pos, max(0, sm.num_rows - 1))
                occupied &= occ[rows[safe], k]
            vals = grid[occupied]
            if vals.size == 0:
                continue
            rel = vals % ncols if ncols else vals
            vmin, vmax = int(rel.min()), int(rel.max())
            if vmin < lo or vmax >= hi:
                cert.findings.append(Finding(
                    "shard-halo", "error", f"{where} / {ind.label}",
                    f"scatter x gather range [{vmin}, {vmax}] escapes "
                    f"the halo [{lo}, {hi})"))


def _ell_column_of(label: str) -> Optional[int]:
    """The ELL column index baked into a scatter gather's label."""
    marker = "[k="
    pos = label.find(marker)
    if pos < 0:
        return None
    end = label.find("]", pos)
    try:
        return int(label[pos + len(marker):end])
    except ValueError:  # pragma: no cover - label format is ours
        return None


# ----------------------------------------------------------------------
# prover 2: cross-shard write disjointness
# ----------------------------------------------------------------------
def _write_mask(model: KernelModel) -> np.ndarray:
    """Boolean mask over the flat y buffer of every element written."""
    n = model.plan.nrows * model.plan.nvec
    mask = np.zeros(n, dtype=bool)
    for rm in model.regions:
        for acc in rm.accesses:
            if acc.buffer != "y" or acc.kind != "store":
                continue
            if acc.nsegs <= 0 or acc.lanes <= 0:
                continue
            segs = np.arange(acc.nsegs, dtype=np.int64)[:, None]
            lanes = np.arange(acc.lanes, dtype=np.int64)[None, :]
            idx = acc.base + acc.seg_coeff * segs + acc.lane_coeff * lanes
            active = np.ones(idx.shape, dtype=bool)
            if acc.lane_bound is not None:
                active &= lanes < acc.lane_bound
            if acc.guard_lo is not None:
                active &= idx >= acc.guard_lo
            if acc.guard_hi is not None:
                active &= idx < acc.guard_hi
            mask[idx[active]] = True
    if model.scatter is not None:
        for ind in model.scatter.indirect:
            if ind.buffer != "y" or ind.kind != "store":
                continue
            if ind.index_grid is None:
                continue
            active = (ind.active if ind.active is not None
                      else np.ones(ind.index_grid.shape, dtype=bool))
            mask[np.asarray(ind.index_grid, dtype=np.int64)[active]] = True
    return mask


def _check_disjoint(whole_model: KernelModel, shard_plan,
                    submodels: Sequence[KernelModel],
                    cert: ShardCertificate) -> None:
    nrows = whole_model.plan.nrows
    whole = _write_mask(whole_model)
    coverage = np.zeros(whole.size, dtype=np.int64)
    union = np.zeros(whole.size, dtype=bool)
    for spec, model in zip(shard_plan.shards, submodels):
        mask = _write_mask(model)
        rows = np.nonzero(mask)[0] % nrows
        outside = rows[(rows < spec.row_start) | (rows >= spec.row_end)]
        if outside.size:
            cert.findings.append(Finding(
                "shard-disjoint", "error", f"shard {spec.index}",
                f"{outside.size} y write(s) escape the declared row "
                f"block [{spec.row_start}, {spec.row_end}) — first at "
                f"row {int(outside[0])} (a segment straddles the "
                "boundary)"))
        coverage += mask
        union |= mask
    clash = np.nonzero(coverage > 1)[0]
    if clash.size:
        cert.findings.append(Finding(
            "shard-disjoint", "error", "cross-shard",
            f"{clash.size} y element(s) written by more than one shard "
            f"— first at flat index {int(clash[0])}"))
    diff = np.nonzero(union != whole)[0]
    if diff.size:
        cert.findings.append(Finding(
            "shard-disjoint", "error", "cross-shard",
            f"union of shard write sets differs from the unsharded "
            f"write set at {diff.size} element(s) — first at flat "
            f"index {int(diff[0])}"))


# ----------------------------------------------------------------------
# prover 4: deterministic scatter reduction order
# ----------------------------------------------------------------------
def _check_order(plan: KernelPlan, matrix, shard_plan,
                 cert: ShardCertificate) -> None:
    rowno = np.asarray(matrix.scatter_rowno, dtype=np.int64)
    if rowno.size == 0:
        return
    slices = [rowno[s.scatter_start:s.scatter_end]
              for s in shard_plan.shards]
    concat = (np.concatenate(slices) if slices
              else np.empty(0, dtype=np.int64))
    if concat.size != rowno.size or not np.array_equal(concat, rowno):
        cert.findings.append(Finding(
            "shard-order", "error", "scatter slices",
            "per-shard scatter slices do not concatenate to the full "
            "sorted scatter row list — overwrite order would drift "
            "from the unsharded launch"))
        return
    starts = np.asarray([s.row_start for s in shard_plan.shards],
                        dtype=np.int64)
    ends = np.asarray([s.row_end for s in shard_plan.shards],
                      dtype=np.int64)
    for r in rowno:
        owners = np.nonzero((starts <= r) & (r < ends))[0]
        if owners.size != 1:
            cert.findings.append(Finding(
                "shard-order", "error", f"scatter row {int(r)}",
                f"row is owned by {owners.size} shard blocks; expected "
                "exactly one"))
            continue
        scatter_shard = int(owners[0])
        dia_shard = _dia_shard_of(plan, shard_plan, int(r))
        if dia_shard is not None and dia_shard > scatter_shard:
            cert.findings.append(Finding(
                "shard-order", "error", f"scatter row {int(r)}",
                f"dia coverage executes in shard {dia_shard} after the "
                f"scatter overwrite in shard {scatter_shard} — the "
                "dia-before-scatter reduction order would invert"))


def _dia_shard_of(plan: KernelPlan, shard_plan, row: int) -> Optional[int]:
    """Index of the shard executing the dia segment covering ``row``
    (None when no region covers the row)."""
    for r in plan.regions:
        if r.start_row <= row < r.start_row + r.nrs * r.mrows:
            seg_start = (r.start_row
                         + ((row - r.start_row) // r.mrows) * r.mrows)
            for i, s in enumerate(shard_plan.shards):
                seg_lo, seg_hi = shard_segment_range(
                    r.start_row, r.nrs, r.mrows, s.row_start, s.row_end)
                first = r.start_row + seg_lo * r.mrows
                last = r.start_row + seg_hi * r.mrows
                if first <= seg_start < last:
                    return i
    return None


# ----------------------------------------------------------------------
# prover 3: trace conservation
# ----------------------------------------------------------------------
def _scatter_only_trace(model: KernelModel,
                        device: DeviceSpec) -> Optional[KernelTrace]:
    """The scatter launch's share of the closed-form prediction."""
    tr = KernelTrace()
    sm = model.scatter
    if sm is None or sm.num_rows == 0:
        return tr
    nwf = -(-model.lanes // device.wavefront_size)
    tr.work_groups = sm.num_groups
    tr.wavefronts = sm.num_groups * nwf
    for acc in sm.accesses:
        _count_affine(tr, acc, model, device)
    for ind in sm.indirect:
        if ind.index_grid is None:
            return None
        _count_indirect(tr, ind, model, device)
    tr.flops = sm.flops_total
    return tr


def _trace_sub(a: KernelTrace, b: KernelTrace) -> Dict[str, int]:
    return {name: getattr(a, name) - getattr(b, name)
            for name in _TRACE_FIELDS}


def _check_trace(whole_model: KernelModel, submodels: Sequence[KernelModel],
                 device: DeviceSpec, cert: ShardCertificate) -> None:
    from repro.gpu_kernels.fused import synthesize_trace

    whole_base = predict_trace(whole_model, device)
    whole_scatter = _scatter_only_trace(whole_model, device)
    if whole_base is None or whole_scatter is None:
        cert.findings.append(Finding(
            "shard-trace", "error", "whole matrix",
            "closed-form trace prediction unavailable (indirect access "
            "without baked index data)"))
        return
    shard_bases: List[KernelTrace] = []
    shard_scatters: List[KernelTrace] = []
    for i, model in enumerate(submodels):
        base = predict_trace(model, device)
        scat = _scatter_only_trace(model, device)
        if base is None or scat is None:
            cert.findings.append(Finding(
                "shard-trace", "error", f"shard {i}",
                "closed-form trace prediction unavailable for the "
                "shard sub-plan"))
            return
        shard_bases.append(base)
        shard_scatters.append(scat)
    # dia phase: exactly additive, counter for counter
    whole_dia = _trace_sub(whole_base, whole_scatter)
    for name in _TRACE_FIELDS:
        total = sum(getattr(b, name) - getattr(s, name)
                    for b, s in zip(shard_bases, shard_scatters))
        if total != whole_dia[name]:
            cert.findings.append(Finding(
                "shard-trace", "error", "dia phase",
                f"counter {name} not conserved: shards sum to {total}, "
                f"whole matrix predicts {whole_dia[name]}"))
    # scatter phase: work counters exactly additive; the geometry /
    # request / transaction counters shift by the wavefront re-packing
    # of the per-shard row slices — computed exactly and carried
    repack: Dict[str, int] = {}
    for name in _TRACE_FIELDS:
        total = sum(getattr(s, name) for s in shard_scatters)
        delta = total - getattr(whole_scatter, name)
        if name in INVARIANT_COUNTERS:
            if delta:
                cert.findings.append(Finding(
                    "shard-trace", "error", "scatter phase",
                    f"counter {name} not conserved: shards sum to "
                    f"{total}, whole matrix predicts "
                    f"{getattr(whole_scatter, name)}"))
        elif delta:
            repack[name] = delta
    cert.scatter_repack = repack
    if any(f.severity == "error" and f.check == "shard-trace"
           for f in cert.findings):
        return
    # L2 split: replay each shard through its own private cache and the
    # whole launch through one shared cache; totals must agree modulo
    # the repacking delta, and the DRAM-side difference is the exact
    # halo re-read term
    whole_l2 = synthesize_trace(whole_model, device, whole_base)
    shard_l2 = tuple(synthesize_trace(m, device, b)
                     for m, b in zip(submodels, shard_bases))
    lhs = sum(t.l2_hits + t.global_load_transactions for t in shard_l2)
    rhs = (whole_l2.l2_hits + whole_l2.global_load_transactions
           + repack.get("global_load_transactions", 0))
    if lhs != rhs:
        cert.findings.append(Finding(
            "shard-trace", "error", "L2 replay",
            f"total load transactions not conserved under the L2 "
            f"split: shards account for {lhs}, whole matrix for {rhs}"))
        return
    cert.whole_trace = whole_l2
    cert.per_shard_traces = shard_l2
    cert.halo_reread_transactions = (
        sum(t.global_load_transactions for t in shard_l2)
        - whole_l2.global_load_transactions
        - repack.get("global_load_transactions", 0))

"""Findings and the aggregate analysis report.

Machine-readable by design: ``AnalysisReport.to_dict()`` is what the
``repro analyze`` CLI prints as JSON, and ``exit_code`` is the process
exit code (non-zero iff any *error*-severity finding survived).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.codegen.plan import KernelPlan
from repro.ocl.trace import KernelTrace

#: the five checkers plus the render cross-check, plus the four
#: shard-plan provers (see repro.analyze.sharding)
CHECKS = (
    "bounds",
    "coalescing",
    "divergence",
    "localmem",
    "batch-safety",
    "render",
    "shard-halo",
    "shard-disjoint",
    "shard-trace",
    "shard-order",
)

SEVERITIES = ("error", "warning", "info")


class KernelAnalysisError(ValueError):
    """A strict-mode build found analyzer violations."""

    def __init__(self, report: "AnalysisReport"):
        self.report = report
        lines = [f"{f.check}: {f.where}: {f.message}"
                 for f in report.violations]
        super().__init__(
            "static analysis found %d violation(s):\n  %s"
            % (len(lines), "\n  ".join(lines))
        )


@dataclass(frozen=True)
class Finding:
    """One analyzer observation."""

    check: str      # one of CHECKS
    severity: str   # "error" | "warning" | "info"
    where: str      # e.g. "region 3 / AD group d0" or "scatter"
    message: str

    def __post_init__(self):
        if self.check not in CHECKS:
            raise ValueError(f"unknown check {self.check!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, str]:
        """JSON-serialisable form of the finding."""
        return {
            "check": self.check,
            "severity": self.severity,
            "where": self.where,
            "message": self.message,
        }


@dataclass
class AnalysisReport:
    """Outcome of one full static analysis of a kernel plan."""

    plan: KernelPlan
    findings: List[Finding] = field(default_factory=list)
    #: exact static prediction of the dynamic KernelTrace on a device
    #: with the L2 model disabled (None when the scatter index data was
    #: not supplied and the matrix has scatter rows)
    predicted: Optional[KernelTrace] = None
    #: static coalescing efficiencies (pre-L2), matching
    #: KernelTrace.{load,store}_coalescing_efficiency on l2_bytes=0
    load_coalescing_efficiency: Optional[float] = None
    store_coalescing_efficiency: Optional[float] = None
    #: 1.0 iff no lane-dependent control flow was found
    divergence_efficiency: Optional[float] = None
    #: worst-case local memory one work-group requests, in bytes
    local_bytes_required: int = 0
    #: batched-execution safety: every work-group's y write-set proven
    #: disjoint (None = prover could not run, e.g. no rowno data)
    batched_write_sets_disjoint: Optional[bool] = None

    # ------------------------------------------------------------------
    @property
    def violations(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def add(self, check: str, severity: str, where: str,
            message: str) -> None:
        """Append one finding (validated against CHECKS/SEVERITIES)."""
        self.findings.append(Finding(check, severity, where, message))

    def by_check(self, check: str) -> List[Finding]:
        """All findings of one checker."""
        return [f for f in self.findings if f.check == check]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serialisable report (the ``repro analyze`` payload)."""
        out: Dict = {
            "ok": self.ok,
            "num_violations": len(self.violations),
            "findings": [f.to_dict() for f in self.findings],
            "plan": {
                "nrows": self.plan.nrows,
                "ncols": self.plan.ncols,
                "mrows": self.plan.mrows,
                "num_regions": len(self.plan.regions),
                "num_groups": self.plan.num_groups,
                "scatter_rows": self.plan.scatter.num_rows,
                "nvec": self.plan.nvec,
                "use_local_memory": self.plan.use_local_memory,
            },
            "metrics": {
                "load_coalescing_efficiency": self.load_coalescing_efficiency,
                "store_coalescing_efficiency": self.store_coalescing_efficiency,
                "divergence_efficiency": self.divergence_efficiency,
                "local_bytes_required": self.local_bytes_required,
                "batched_write_sets_disjoint": self.batched_write_sets_disjoint,
            },
        }
        if self.predicted is not None:
            out["predicted_trace"] = {
                "work_groups": self.predicted.work_groups,
                "wavefronts": self.predicted.wavefronts,
                "global_load_requests": self.predicted.global_load_requests,
                "global_load_transactions":
                    self.predicted.global_load_transactions,
                "global_load_bytes_useful":
                    self.predicted.global_load_bytes_useful,
                "global_store_requests": self.predicted.global_store_requests,
                "global_store_transactions":
                    self.predicted.global_store_transactions,
                "global_store_bytes_useful":
                    self.predicted.global_store_bytes_useful,
                "local_load_bytes": self.predicted.local_load_bytes,
                "local_store_bytes": self.predicted.local_store_bytes,
                "barriers": self.predicted.barriers,
                "flops": self.predicted.flops,
            }
        return out

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"static analysis: {len(self.findings)} finding(s), "
            f"{len(self.violations)} violation(s)"
        ]
        for f in self.findings:
            lines.append(f"  [{f.severity:<7}] {f.check:<12} {f.where}: "
                         f"{f.message}")
        if self.load_coalescing_efficiency is not None:
            lines.append(
                "  predicted coalescing: load "
                f"{self.load_coalescing_efficiency:.4f}, store "
                f"{self.store_coalescing_efficiency:.4f}; divergence "
                f"{self.divergence_efficiency:.1f}; local mem "
                f"{self.local_bytes_required} B; batched-safe="
                f"{self.batched_write_sets_disjoint}"
            )
        return "\n".join(lines)

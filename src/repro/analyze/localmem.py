"""Local-memory checker: races, barrier placement, capacity.

Work-items of a group run concurrently between barriers, so the
checker reasons in *epochs*: the ops between two consecutive
``barrier(CLK_LOCAL_MEM_FENCE)`` calls.  Within one epoch any element
of a tile touched by a store *and* by a different lane's store or load
is a race — the staging pattern is only correct because a barrier
separates the x-window stores from the multiply-accumulate loads.

Both renderings are checked: the Python simulator's per-AD-group tiles
(:attr:`RegionModel.local_ops`) and the OpenCL kernel's single shared
``xtile`` (:attr:`RegionModel.opencl_local_ops`) — the latter is where
a missing wait-for-reads barrier between two AD groups of the same
region shows up as a write-after-read race.

Capacity: the OpenCL rendering declares ``__local real
xtile[max_tile_len]``; the Python rendering allocates every AD tile of
a region codelet at once.  The worst case of the two must fit the
device's per-CU local memory — checked here and used by the autotuner
to reject ``use_local_memory`` configurations statically.
"""

from __future__ import annotations

from typing import List

from repro.analyze.model import KernelModel, LocalOp
from repro.analyze.report import AnalysisReport
from repro.codegen.plan import KernelPlan
from repro.ocl.device import DeviceSpec, TESLA_C2050

_REAL_ITEMSIZE = {"double": 8, "fp64": 8, "single": 4, "fp32": 4}


def required_local_bytes(plan: KernelPlan,
                         precision: str = "double") -> int:
    """Worst-case local memory one work-group of ``plan`` requests.

    Usable standalone (e.g. by the autotuner) — needs no model build.
    """
    isize = _REAL_ITEMSIZE.get(precision.lower())
    if isize is None:
        raise ValueError(f"unknown precision {precision!r}")
    if not plan.use_local_memory or plan.nvec > 1:
        return 0
    worst = plan.max_tile_len  # the OpenCL shared declaration
    for region in plan.regions:
        total = sum(
            region.mrows + g.ndiags - 1
            for g in region.groups if g.kind == "AD"
        )
        worst = max(worst, total)  # Python rendering: tiles coexist
    return worst * isize


def check_localmem(model: KernelModel, report: AnalysisReport,
                   device: DeviceSpec = TESLA_C2050) -> None:
    """Race + barrier + capacity checks; fills
    ``report.local_bytes_required``."""
    for rm in model.regions:
        where = f"region {rm.region.index}"
        _check_races(rm.local_ops, f"{where} (python rendering)", report)
        _check_races(rm.opencl_local_ops, f"{where} (opencl rendering)",
                     report)
    required = required_local_bytes(model.plan,
                                    _precision_name(model.itemsize))
    report.local_bytes_required = required
    if required > device.local_mem_per_cu_bytes:
        report.add(
            "localmem", "error", "kernel",
            f"work-group requests {required} B of local memory; device "
            f"provides {device.local_mem_per_cu_bytes} B per CU — the "
            "kernel cannot launch (reject this configuration)",
        )


def _precision_name(itemsize: int) -> str:
    return "double" if itemsize == 8 else "single"


def _same_lane_only(a: LocalOp, b: LocalOp) -> bool:
    """True when every element both ops touch is touched by the *same*
    lane in each — sequential within a work-item, hence race-free."""
    return (a.base == b.base and a.lane_coeff == b.lane_coeff
            and a.lane_coeff != 0)


def _overlap(a: LocalOp, b: LocalOp) -> bool:
    alo, ahi = a.elements()
    blo, bhi = b.elements()
    return a.tile == b.tile and alo <= bhi and blo <= ahi


def _check_races(ops: List[LocalOp], where: str,
                 report: AnalysisReport) -> None:
    epoch: List[LocalOp] = []
    for op in ops:
        if op.op == "barrier":
            epoch = []
            continue
        if op.op == "store" and op.lane_coeff == 0 and op.lane_bound > 1:
            report.add(
                "localmem", "error", where,
                f"store to {op.tile}[{op.base}] by {op.lane_bound} lanes "
                "at once: write-write race on a single element",
            )
        for prev in epoch:
            if "store" not in (op.op, prev.op):
                continue  # two loads never race
            if not _overlap(op, prev):
                continue
            if _same_lane_only(op, prev):
                continue
            kind = ("write-write" if op.op == prev.op == "store"
                    else "read-write")
            lo = max(op.elements()[0], prev.elements()[0])
            hi = min(op.elements()[1], prev.elements()[1])
            report.add(
                "localmem", "error", where,
                f"{kind} race on {op.tile}[{lo}..{hi}]: {prev.op} and "
                f"{op.op} in the same barrier epoch touch the same "
                "elements from different lanes (missing "
                "barrier(CLK_LOCAL_MEM_FENCE)?)",
            )
        epoch.append(op)

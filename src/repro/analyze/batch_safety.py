"""Batched-execution safety prover.

The segment-batched executor runs every work-group of a launch
concurrently against shared buffers, which is only sound if no two
work-groups store to the same ``y`` element.  For the dia kernel that
is provable from the plan alone: work-group ``(region, seg)`` writes
exactly the row interval ``[start_row + seg*mrows, start_row +
(seg+1)*mrows) ∩ [0, nrows)`` — the prover collects every interval and
certifies pairwise disjointness (equivalently: the region partition of
Table III covers each row once).

For the scatter kernel the write-set goes through ``scatter_rowno``;
when that baked array is supplied the prover checks its entries are
pairwise distinct (two lanes storing the same row would race within
the one scatter launch).  The dia and scatter kernels intentionally
*both* write scatter rows — the scatter launch runs after the dia
launch and overwrites, which is ordered by the launch boundary, not a
race — so cross-kernel overlap is not flagged.
"""

from __future__ import annotations

import numpy as np

from repro.analyze.model import KernelModel
from repro.analyze.report import AnalysisReport


def check_batch_safety(model: KernelModel, report: AnalysisReport) -> None:
    """Prove per-work-group y write-sets disjoint; fills
    ``report.batched_write_sets_disjoint``."""
    plan = model.plan
    intervals = []  # (row_lo, row_hi_exclusive, owner)
    for rm in model.regions:
        r = rm.region
        for seg in range(r.nrs):
            lo = r.start_row + seg * r.mrows
            hi = min(lo + r.mrows, plan.nrows)
            if hi <= lo:
                continue  # fully clipped: group stores nothing
            intervals.append((lo, hi, f"region {r.index} seg {seg}"))
    intervals.sort()
    disjoint = True
    for (alo, ahi, aown), (blo, bhi, bown) in zip(intervals, intervals[1:]):
        if blo < ahi:
            disjoint = False
            report.add(
                "batch-safety", "error", "dia kernel",
                f"y rows [{blo}, {min(ahi, bhi)}) written by both {aown} "
                f"and {bown}: concurrent work-groups race under batched "
                "execution",
            )

    scatter_proved = True  # vacuously, when there is nothing to check
    if model.scatter is not None:
        rowno = _baked_rowno(model)
        if rowno is None:
            scatter_proved = None
            report.add(
                "batch-safety", "info", "scatter",
                "scatter_rowno data not supplied; scatter write-set "
                "disjointness not proved",
            )
        else:
            uniq, counts = np.unique(rowno, return_counts=True)
            dup = uniq[counts > 1]
            if dup.size:
                scatter_proved = False
                report.add(
                    "batch-safety", "error", "scatter",
                    f"scatter_rowno stores row(s) {dup[:8].tolist()} more "
                    "than once: concurrent lanes race on y",
                )

    if not disjoint or scatter_proved is False:
        report.batched_write_sets_disjoint = False
    elif scatter_proved is None:
        report.batched_write_sets_disjoint = None
    else:
        report.batched_write_sets_disjoint = True


def _baked_rowno(model: KernelModel):
    for ind in model.scatter.indirect:
        if ind.via == "scatter_rowno" and ind.index_grid is not None:
            act = (ind.active if ind.active is not None
                   else np.ones(ind.index_grid.shape, dtype=bool))
            return ind.index_grid[act]
    return None

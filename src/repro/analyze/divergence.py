"""Divergence linter.

The paper's design point is that all work-items of a work-group take
the same execution path (the pattern ``switch`` selects per *group*,
never per lane), so CRSD kernels have divergence efficiency exactly
1.0.  This linter proves that property from the generated source:

- **Python rendering** (what the simulator executes): parsed with
  ``ast``; lane-varying values (anything data-flowing from ``ctx.lid``)
  may only be consumed as ``mask=`` predication — any ``if``/``while``/
  ``for`` whose condition or iterable is lane-varying is a divergence
  violation, as is any ``ctx.loop_trips`` call (a kernel reporting
  per-lane trip counts has, by definition, lane-variable control flow).
- **OpenCL rendering**: the kernels must be fully unrolled (no
  ``for``/``while`` at all — also the paper's loop-unrolling claim),
  and every lane-dependent ``if`` must be a pure predication guard:
  its body may not contain a ``barrier`` (a barrier under divergent
  control flow deadlocks real hardware) or a loop.

A clean pass predicts static divergence efficiency 1.0 — which equals
the dynamic :attr:`~repro.ocl.trace.KernelTrace.divergence_efficiency`
of the executed kernel (no ``loop_trips`` report → 1.0).
"""

from __future__ import annotations

import ast
import re
from typing import Set

from repro.analyze.report import AnalysisReport
from repro.codegen.validator import strip_comments

_ID = r"[A-Za-z_][A-Za-z0-9_]*"


def check_divergence(python_source: str, opencl_source: str,
                     report: AnalysisReport) -> None:
    """Lint both renderings; sets the report's static efficiency."""
    ok = _check_python(python_source, report)
    ok &= _check_opencl(opencl_source, report)
    report.divergence_efficiency = 1.0 if ok else None


# ----------------------------------------------------------------------
# Python rendering
# ----------------------------------------------------------------------

def _lane_tainted_names(fn: ast.FunctionDef) -> Set[str]:
    """Fixpoint dataflow: names carrying lane-varying values.

    Seeded with ``ctx.lid``; any simple assignment whose RHS mentions a
    tainted name (or ``.lid``) taints its targets.
    """
    tainted: Set[str] = set()

    def rhs_tainted(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "lid":
                return True
            if isinstance(sub, ast.Name) and sub.id in tainted:
                return True
        return False

    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                value = node.value
                targets = (node.targets
                           if isinstance(node, ast.Assign) else [node.target])
                if value is not None and rhs_tainted(value):
                    for t in targets:
                        for n in ast.walk(t):
                            if (isinstance(n, ast.Name)
                                    and n.id not in tainted):
                                tainted.add(n.id)
                                changed = True
    return tainted


def _check_python(src: str, report: AnalysisReport) -> bool:
    try:
        tree = ast.parse(src)
    except SyntaxError as exc:
        report.add("divergence", "error", "python rendering",
                   f"source does not parse: {exc}")
        return False
    ok = True
    for fn in [n for n in ast.walk(tree)
               if isinstance(n, ast.FunctionDef)]:
        tainted = _lane_tainted_names(fn)
        for node in ast.walk(fn):
            cond = None
            if isinstance(node, (ast.If, ast.While)):
                cond = node.test
            elif isinstance(node, ast.For):
                cond = node.iter
            elif isinstance(node, ast.IfExp):
                cond = node.test
            if cond is None:
                continue
            names = {n.id for n in ast.walk(cond)
                     if isinstance(n, ast.Name)}
            hit = names & tainted
            if hit or any(isinstance(n, ast.Attribute) and n.attr == "lid"
                          for n in ast.walk(cond)):
                report.add(
                    "divergence", "error", f"python rendering / {fn.name}",
                    f"lane-dependent control flow on {sorted(hit) or ['lid']}"
                    f" at line {node.lineno} — lane variation must be "
                    "expressed as mask= predication",
                )
                ok = False
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "loop_trips"):
                report.add(
                    "divergence", "error", f"python rendering / {fn.name}",
                    "kernel reports loop_trips: per-lane trip counts mean "
                    "lane-variable loops (divergence efficiency < 1)",
                )
                ok = False
    return ok


# ----------------------------------------------------------------------
# OpenCL rendering
# ----------------------------------------------------------------------

def _opencl_tainted(body: str) -> Set[str]:
    tainted = {"local_id"}
    assign = re.compile(
        rf"\b(?:const\s+)?(?:int|{_ID})?\s*({_ID})\s*=\s*([^;]*);")
    changed = True
    while changed:
        changed = False
        for m in assign.finditer(body):
            name, rhs = m.group(1), m.group(2)
            if name in tainted:
                continue
            rhs_ids = set(re.findall(_ID, rhs))
            if rhs_ids & tainted or "get_local_id" in rhs:
                tainted.add(name)
                changed = True
    return tainted


def _balanced_block(src: str, start: int) -> str:
    """The ``{...}`` block (or single statement) following position
    ``start`` (the index just past an ``if (...)`` condition)."""
    i = start
    while i < len(src) and src[i] in " \t\r\n":
        i += 1
    if i < len(src) and src[i] == "{":
        depth = 0
        for j in range(i, len(src)):
            if src[j] == "{":
                depth += 1
            elif src[j] == "}":
                depth -= 1
                if depth == 0:
                    return src[i:j + 1]
        return src[i:]
    end = src.find(";", i)
    return src[i:end + 1] if end >= 0 else src[i:]


def _check_opencl(src: str, report: AnalysisReport) -> bool:
    body = strip_comments(src)
    ok = True
    if re.search(r"\b(for|while)\s*\(", body):
        report.add(
            "divergence", "error", "opencl rendering",
            "loop found — generated kernels must be fully unrolled "
            "(constant trip counts are baked at generation time)",
        )
        ok = False
    tainted = _opencl_tainted(body)
    for m in re.finditer(r"\bif\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)", body):
        cond_ids = set(re.findall(_ID, m.group(1)))
        if not (cond_ids & tainted):
            continue  # uniform branch (group_id / region selection)
        block = _balanced_block(body, m.end())
        if "barrier" in block:
            report.add(
                "divergence", "error", "opencl rendering",
                f"barrier inside lane-dependent branch "
                f"`if ({m.group(1).strip()})` — divergent barriers "
                "deadlock; guards must stay pure predication",
            )
            ok = False
        if re.search(r"\b(for|while)\s*\(", block):
            report.add(
                "divergence", "error", "opencl rendering",
                f"loop inside lane-dependent branch "
                f"`if ({m.group(1).strip()})`",
            )
            ok = False
    return ok

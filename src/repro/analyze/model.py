"""Symbolic access model of a generated CRSD kernel.

The generated codelets only ever index memory with *affine* expressions
of the region-local segment number ``seg`` and the lane id ``lid`` —
every coefficient is a literal baked by the code generator.  This
module rebuilds those expressions directly from the
:class:`~repro.codegen.plan.KernelPlan` (the single source of truth
both renderings are emitted from), producing a list of
:class:`GlobalAccess` / :class:`LocalOp` records per codelet that the
checkers reason over *without executing any kernel*.

An access is ``idx(seg, lane) = base + seg_coeff * seg + lane_coeff *
lane`` with an optional predication guard ``guard_lo <= idx < guard_hi``
and an optional lane bound ``lane < lane_bound`` — exactly the masks the
Python rendering passes to ``gload``/``gstore`` and the OpenCL rendering
expresses as ``if (xi >= 0 && xi < N)`` predication.

Indirect accesses (the scatter kernel's ``x[scatter_colval[...]]``
gather and ``y[scatter_rowno[...]]`` store) go through constant index
buffers whose *contents* are baked at build time; when those arrays are
supplied the model carries the concrete per-lane index grids, otherwise
the accesses are recorded as range-assumed (see
:class:`IndirectAccess`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codegen.plan import KernelPlan, RegionPlan


@dataclass(frozen=True)
class GlobalAccess:
    """One affine global-memory access, over a whole region launch.

    ``idx = base + seg_coeff * seg + lane_coeff * lane`` for
    ``seg in [0, nsegs)`` and ``lane in [0, lanes)``; the lane is
    active iff ``lane < lane_bound`` (when set) and
    ``guard_lo <= idx < guard_hi`` (when set).  Inactive lanes move no
    bytes — that is predication, not divergence.
    """

    buffer: str
    kind: str  # "load" | "store"
    base: int
    seg_coeff: int
    lane_coeff: int
    nsegs: int
    lanes: int
    guard_lo: Optional[int] = None
    guard_hi: Optional[int] = None
    lane_bound: Optional[int] = None
    label: str = ""

    def idx_range(self) -> Tuple[int, int]:
        """Unguarded (min, max) element index over the iteration space."""
        terms = [
            self.seg_coeff * s for s in (0, max(0, self.nsegs - 1))
        ]
        lmax = self.lanes - 1
        if self.lane_bound is not None:
            lmax = min(lmax, self.lane_bound - 1)
        lanes = [self.lane_coeff * l for l in (0, max(0, lmax))]
        vals = [self.base + t + l for t in terms for l in lanes]
        return min(vals), max(vals)

    def guarded_range(self) -> Tuple[int, int]:
        """(min, max) element index an *active* lane can touch."""
        lo, hi = self.idx_range()
        if self.guard_lo is not None:
            lo = max(lo, self.guard_lo)
        if self.guard_hi is not None:
            hi = min(hi, self.guard_hi - 1)
        return lo, hi

    @property
    def guarded(self) -> bool:
        return self.guard_lo is not None or self.guard_hi is not None


@dataclass(frozen=True)
class IndirectAccess:
    """A data-dependent access through a constant index buffer.

    ``index_grid``/``active`` are ``(nsegs, lanes)`` arrays of the
    concrete element indices and lane activity — derivable statically
    because the index buffer contents are baked at CRSD build time.
    When the index data was not supplied to the model builder both are
    ``None`` and checkers fall back to the declared ``assumed_range``.
    """

    buffer: str
    kind: str
    via: str  # name of the index buffer ("scatter_colval"/"scatter_rowno")
    label: str = ""
    index_grid: Optional[np.ndarray] = None
    active: Optional[np.ndarray] = None
    assumed_range: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class LocalOp:
    """One local-memory operation (or barrier) inside a codelet, in
    program order.  Element index of a store/load is
    ``base + lane_coeff * lane`` for ``lane < lane_bound``."""

    op: str  # "store" | "load" | "barrier"
    tile: str = ""
    base: int = 0
    lane_coeff: int = 0
    lane_bound: int = 0

    def elements(self) -> Tuple[int, int]:
        """(min, max) element touched (stores/loads only)."""
        last = self.base + self.lane_coeff * max(0, self.lane_bound - 1)
        return min(self.base, last), max(self.base, last)


@dataclass
class RegionModel:
    """Model of one region codelet (= one launch sub-range)."""

    region: RegionPlan
    accesses: List[GlobalAccess] = field(default_factory=list)
    #: per-work-group local-memory program, Python rendering semantics
    #: (each AD group allocates its own tile)
    local_ops: List[LocalOp] = field(default_factory=list)
    #: tile name -> element count
    tiles: Dict[str, int] = field(default_factory=dict)
    #: local-memory ops as the OpenCL rendering sees them: every AD
    #: group shares the single ``xtile[max_tile_len]`` declaration
    opencl_local_ops: List[LocalOp] = field(default_factory=list)
    #: flops the codelet reports per work-group
    flops_per_group: int = 0
    #: barriers the Python rendering executes per work-group
    barriers_per_group: int = 0
    #: y rows written per segment: row in [row_base + seg*mrows,
    #: ... + mrows) clipped by nrows — for the batch-safety prover
    y_row_base: int = 0


@dataclass
class ScatterModel:
    """Model of the scatter-ELL kernel launch."""

    num_rows: int
    width: int
    num_groups: int
    lanes: int
    accesses: List[GlobalAccess] = field(default_factory=list)
    indirect: List[IndirectAccess] = field(default_factory=list)
    flops_total: int = 0


@dataclass
class KernelModel:
    """Everything the checkers need, derived from one plan."""

    plan: KernelPlan
    itemsize: int
    index_itemsize: int
    lanes: int
    #: buffer name -> element count
    buffer_sizes: Dict[str, int]
    regions: List[RegionModel] = field(default_factory=list)
    scatter: Optional[ScatterModel] = None

    @property
    def num_dia_groups(self) -> int:
        return self.plan.num_groups


_REAL_ITEMSIZE = {"double": 8, "fp64": 8, "single": 4, "fp32": 4}


def build_model(
    plan: KernelPlan,
    precision: str = "double",
    scatter_colval: Optional[np.ndarray] = None,
    scatter_rowno: Optional[np.ndarray] = None,
) -> KernelModel:
    """Derive the symbolic access model from ``plan``.

    ``scatter_colval`` is the *device layout* column-major flat array
    (``colval.T.ravel()``, as the runner uploads it) or the original
    ``(num_rows, width)`` matrix — both are accepted.  When omitted,
    the scatter kernel's indirect accesses carry only an assumed range.
    """
    isize = _REAL_ITEMSIZE.get(precision.lower())
    if isize is None:
        raise ValueError(f"unknown precision {precision!r}")
    dia_slots = sum(r.nrs * r.nnz_per_segment for r in plan.regions)
    sizes = {
        "dia_val": dia_slots,
        "x": plan.ncols * plan.nvec,
        "y": plan.nrows * plan.nvec,
        "scatter_colval": plan.scatter.num_rows * plan.scatter.width,
        "scatter_val": plan.scatter.num_rows * plan.scatter.width,
        "scatter_rowno": plan.scatter.num_rows,
    }
    # scatter index buffers are INDEX_DTYPE (int32) on the device
    index_itemsize = 4
    if scatter_rowno is not None:
        index_itemsize = int(np.asarray(scatter_rowno).dtype.itemsize)
    elif scatter_colval is not None:
        index_itemsize = int(np.asarray(scatter_colval).dtype.itemsize)
    model = KernelModel(
        plan=plan,
        itemsize=isize,
        index_itemsize=index_itemsize,
        lanes=plan.local_size,
        buffer_sizes=sizes,
    )
    for region in plan.regions:
        model.regions.append(_build_region(plan, region, isize))
    if plan.scatter.num_rows:
        model.scatter = _build_scatter(
            plan, isize, index_itemsize, scatter_colval, scatter_rowno
        )
    return model


# ----------------------------------------------------------------------
# region codelets — mirrors codegen.python_codelet statement for
# statement (the emitted masks/clips become guards here)
# ----------------------------------------------------------------------

def _build_region(plan: KernelPlan, region: RegionPlan,
                  isize: int) -> RegionModel:
    m = region.mrows
    rm = RegionModel(region=region, y_row_base=region.start_row)
    shared_written = False  # OpenCL xtile already used by an earlier AD group

    def dia_load(d: int, label: str) -> GlobalAccess:
        return GlobalAccess(
            buffer="dia_val", kind="load",
            base=region.slab_base + d * m,
            seg_coeff=region.nnz_per_segment, lane_coeff=1,
            nsegs=region.nrs, lanes=m, label=label,
        )

    for g in region.groups:
        glabel = f"region {region.index} {g.kind} group d{g.d_first}"
        if plan.nvec > 1:
            for jj in range(g.ndiags):
                d = g.d_first + jj
                rm.accesses.append(dia_load(d, f"{glabel} dia_val[d={d}]"))
                for j in range(plan.nvec):
                    rm.accesses.append(GlobalAccess(
                        buffer="x", kind="load",
                        base=j * plan.ncols + g.colv[jj],
                        seg_coeff=m, lane_coeff=1,
                        nsegs=region.nrs, lanes=m,
                        guard_lo=j * plan.ncols,
                        guard_hi=j * plan.ncols + plan.ncols,
                        label=f"{glabel} x[vec {j}, d={d}]",
                    ))
                rm.flops_per_group += 2 * m * plan.nvec
        elif g.kind == "AD" and plan.use_local_memory:
            n = g.ndiags
            tile_len = m + n - 1
            tile = f"tile_d{g.d_first}"
            rm.tiles[tile] = tile_len
            # staging pass s: x[tbase + s*m + lid] -> tile[s*m + lid],
            # lanes [0, min(tile_len - s*m, m))
            stores = [LocalOp("store", tile, base=0, lane_coeff=1,
                              lane_bound=m)]
            rm.accesses.append(GlobalAccess(
                buffer="x", kind="load",
                base=g.colv[0], seg_coeff=m, lane_coeff=1,
                nsegs=region.nrs, lanes=m,
                guard_lo=0, guard_hi=plan.ncols,
                label=f"{glabel} x tile stage 1",
            ))
            for s in range(1, -(-tile_len // m)):
                extra = min(tile_len - s * m, m)
                rm.accesses.append(GlobalAccess(
                    buffer="x", kind="load",
                    base=g.colv[0] + s * m, seg_coeff=m, lane_coeff=1,
                    nsegs=region.nrs, lanes=m,
                    guard_lo=0, guard_hi=plan.ncols,
                    lane_bound=extra,
                    label=f"{glabel} x tile stage {s + 1}",
                ))
                stores.append(LocalOp("store", tile, base=s * m,
                                      lane_coeff=1, lane_bound=extra))
            loads = []
            for j in range(n):
                d = g.d_first + j
                rm.accesses.append(dia_load(d, f"{glabel} dia_val[d={d}]"))
                loads.append(LocalOp("load", tile, base=j, lane_coeff=1,
                                     lane_bound=m))
                rm.flops_per_group += 2 * m
            # Python rendering: fresh tile per AD group
            rm.local_ops.extend(stores)
            rm.local_ops.append(LocalOp("barrier"))
            rm.local_ops.extend(loads)
            rm.barriers_per_group += 1
            # OpenCL rendering: one shared xtile; restaging it after a
            # previous AD group read it needs a wait-for-reads barrier
            shared = [LocalOp(o.op, "xtile", o.base, o.lane_coeff,
                              o.lane_bound) for o in stores]
            if shared_written:
                rm.opencl_local_ops.append(LocalOp("barrier"))
            rm.opencl_local_ops.extend(shared)
            rm.opencl_local_ops.append(LocalOp("barrier"))
            rm.opencl_local_ops.extend(
                LocalOp(o.op, "xtile", o.base, o.lane_coeff, o.lane_bound)
                for o in loads
            )
            shared_written = True
        else:
            for j in range(g.ndiags):
                d = g.d_first + j
                rm.accesses.append(dia_load(d, f"{glabel} dia_val[d={d}]"))
                rm.accesses.append(GlobalAccess(
                    buffer="x", kind="load",
                    base=g.colv[j], seg_coeff=m, lane_coeff=1,
                    nsegs=region.nrs, lanes=m,
                    guard_lo=0, guard_hi=plan.ncols,
                    label=f"{glabel} x[d={d}]",
                ))
                rm.flops_per_group += 2 * m
    # final y store(s), guarded by row < nrows
    for j in range(plan.nvec):
        rm.accesses.append(GlobalAccess(
            buffer="y", kind="store",
            base=j * plan.nrows + region.start_row,
            seg_coeff=m, lane_coeff=1,
            nsegs=region.nrs, lanes=m,
            guard_hi=j * plan.nrows + plan.nrows,
            label=f"region {region.index} y store"
            + (f" [vec {j}]" if plan.nvec > 1 else ""),
        ))
    return rm


# ----------------------------------------------------------------------
# scatter kernel
# ----------------------------------------------------------------------

def _build_scatter(
    plan: KernelPlan,
    isize: int,
    index_itemsize: int,
    scatter_colval: Optional[np.ndarray],
    scatter_rowno: Optional[np.ndarray],
) -> ScatterModel:
    s = plan.scatter
    ls = plan.local_size
    groups = -(-s.num_rows // ls)
    sm = ScatterModel(num_rows=s.num_rows, width=s.width,
                      num_groups=groups, lanes=ls)
    colval_flat = None
    if scatter_colval is not None:
        cv = np.asarray(scatter_colval)
        if cv.ndim == 2:  # (num_rows, width) host layout -> device layout
            cv = np.ascontiguousarray(cv.T).ravel()
        colval_flat = cv.astype(np.int64, copy=False)
    rowno = None
    if scatter_rowno is not None:
        rowno = np.asarray(scatter_rowno).astype(np.int64, copy=False).ravel()

    # pos = group_id * ls + lid, active iff pos < num_rows
    pos = (np.arange(groups, dtype=np.int64)[:, None] * ls
           + np.arange(ls, dtype=np.int64)[None, :])
    active = pos < s.num_rows
    safe = np.minimum(pos, s.num_rows - 1)

    for k in range(s.width):
        base = k * s.num_rows
        for buf, itemsz in (("scatter_colval", index_itemsize),
                            ("scatter_val", isize)):
            sm.accesses.append(GlobalAccess(
                buffer=buf, kind="load",
                base=base, seg_coeff=ls, lane_coeff=1,
                nsegs=groups, lanes=ls,
                guard_hi=base + s.num_rows,
                label=f"scatter {buf}[k={k}]",
            ))
        for j in range(plan.nvec):
            if colval_flat is not None:
                grid = j * plan.ncols + colval_flat[base + safe]
                sm.indirect.append(IndirectAccess(
                    buffer="x", kind="load", via="scatter_colval",
                    index_grid=grid, active=active,
                    label=f"scatter x gather[k={k}]"
                    + (f" [vec {j}]" if plan.nvec > 1 else ""),
                ))
            else:
                sm.indirect.append(IndirectAccess(
                    buffer="x", kind="load", via="scatter_colval",
                    assumed_range=(j * plan.ncols,
                                   j * plan.ncols + plan.ncols),
                    label=f"scatter x gather[k={k}]"
                    + (f" [vec {j}]" if plan.nvec > 1 else ""),
                ))
        sm.flops_total += 2 * plan.nvec * s.num_rows
    sm.accesses.append(GlobalAccess(
        buffer="scatter_rowno", kind="load",
        base=0, seg_coeff=ls, lane_coeff=1,
        nsegs=groups, lanes=ls,
        guard_hi=s.num_rows,
        label="scatter rowno load",
    ))
    for j in range(plan.nvec):
        if rowno is not None:
            grid = j * plan.nrows + rowno[safe]
            sm.indirect.append(IndirectAccess(
                buffer="y", kind="store", via="scatter_rowno",
                index_grid=grid, active=active,
                label="scatter y store"
                + (f" [vec {j}]" if plan.nvec > 1 else ""),
            ))
        else:
            sm.indirect.append(IndirectAccess(
                buffer="y", kind="store", via="scatter_rowno",
                assumed_range=(j * plan.nrows, j * plan.nrows + plan.nrows),
                label="scatter y store"
                + (f" [vec {j}]" if plan.nvec > 1 else ""),
            ))
    return sm

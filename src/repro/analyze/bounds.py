"""Symbolic bounds checker.

Walks every access of the :class:`~repro.analyze.model.KernelModel`
over the full ``(seg, lane)`` iteration space — symbolically, via the
affine form's extreme values — and proves each one in-bounds:

- unguarded accesses (the ``crsd_dia_val`` slab loads) must be
  in-range for *every* lane of every work-group;
- guarded accesses (x gathers, the y store) must carry a guard that
  actually implies in-bounds — a guard window escaping the buffer is a
  violation even if the matrix at hand never exercises it;
- local-tile accesses must stay inside the tile allocation *and* only
  read elements some store actually wrote (an AD group with more
  member diagonals than ``mrows + 1`` would read staging slots no lane
  ever filled — flagged here and in the local-memory checker).

This is the machine-checked form of the paper's "correct by
construction" index arithmetic (Section III-B: every constant baked
from Table II/III quantities).
"""

from __future__ import annotations


import numpy as np

from repro.analyze.model import GlobalAccess, KernelModel
from repro.analyze.report import AnalysisReport


def check_bounds(model: KernelModel, report: AnalysisReport) -> None:
    """Run the bounds checker; appends findings to ``report``."""
    for rm in model.regions:
        where = f"region {rm.region.index}"
        for acc in rm.accesses:
            _check_access(model, acc, where, report)
        _check_tiles(rm, where, report)
    if model.scatter is not None:
        for acc in model.scatter.accesses:
            _check_access(model, acc, "scatter", report)
        for ind in model.scatter.indirect:
            _check_indirect(model, ind, report)


def _check_access(model: KernelModel, acc: GlobalAccess, where: str,
                  report: AnalysisReport) -> None:
    size = model.buffer_sizes.get(acc.buffer)
    if size is None:
        report.add("bounds", "error", where,
                   f"{acc.label}: access to unknown buffer {acc.buffer!r}")
        return
    lo, hi = acc.idx_range()
    if acc.guarded:
        glo, ghi = acc.guarded_range()
        if glo < 0 or ghi >= size:
            report.add(
                "bounds", "error", where,
                f"{acc.label}: guard window [{glo}, {ghi}] escapes "
                f"{acc.buffer}[0, {size})",
            )
        # a guard that can never be satisfied is suspicious but safe
        if ghi < glo:
            report.add(
                "bounds", "info", where,
                f"{acc.label}: guard masks off every lane",
            )
    else:
        if lo < 0 or hi >= size:
            report.add(
                "bounds", "error", where,
                f"{acc.label}: unguarded access range [{lo}, {hi}] escapes "
                f"{acc.buffer}[0, {size})",
            )


def _check_tiles(rm, where: str, report: AnalysisReport) -> None:
    written: dict = {}
    for op in rm.local_ops:
        if op.op == "barrier":
            continue
        tile_len = rm.tiles.get(op.tile)
        if tile_len is None:
            report.add("localmem", "error", where,
                       f"{op.op} touches unallocated tile {op.tile!r}")
            continue
        lo, hi = op.elements()
        if lo < 0 or hi >= tile_len:
            report.add(
                "bounds", "error", where,
                f"local {op.op} range [{lo}, {hi}] escapes "
                f"{op.tile}[0, {tile_len})",
            )
            continue
        cover = written.setdefault(op.tile,
                                   np.zeros(tile_len, dtype=bool))
        if op.op == "store":
            cover[lo:hi + 1] = True
        elif op.op == "load" and not cover[lo:hi + 1].all():
            missing = int(np.flatnonzero(~cover[lo:hi + 1])[0]) + lo
            report.add(
                "bounds", "error", where,
                f"local load of {op.tile}[{lo}..{hi}] reads element "
                f"{missing} no store ever wrote",
            )


def _check_indirect(model: KernelModel, ind, report: AnalysisReport) -> None:
    size = model.buffer_sizes.get(ind.buffer, 0)
    if ind.index_grid is None:
        lo, hi = ind.assumed_range
        sev = "info"
        msg = (f"{ind.label}: indirect via {ind.via}; assumed range "
               f"[{lo}, {hi}) (index data not supplied)")
        if hi > size or lo < 0:
            sev, msg = "error", (
                f"{ind.label}: assumed range [{lo}, {hi}) escapes "
                f"{ind.buffer}[0, {size})")
        report.add("bounds", sev, "scatter", msg)
        return
    act = ind.active if ind.active is not None else np.ones(
        ind.index_grid.shape, dtype=bool)
    if not act.any():
        return
    used = ind.index_grid[act]
    lo, hi = int(used.min()), int(used.max())
    if lo < 0 or hi >= size:
        report.add(
            "bounds", "error", "scatter",
            f"{ind.label}: baked {ind.via} entries index "
            f"{ind.buffer}[{lo}..{hi}], buffer has [0, {size})",
        )

"""Static analyzer for generated CRSD kernels.

Proves — without executing anything — the properties the paper's
design argues for: in-bounds index arithmetic, perfectly coalesced
slab traffic, divergence-free control flow, race-free local-memory
staging, and batched-execution safety.  Where the property is
quantitative the analyzer computes the *exact* counters the dynamic
:class:`~repro.ocl.trace.KernelTrace` would record (on an L2-disabled
device), so static and dynamic views can be diffed bit-for-bit.

Entry points: :func:`analyze_plan` / :func:`analyze_matrix` run every
checker and return an :class:`AnalysisReport`; :func:`build_model` and
:func:`predict_trace` expose the symbolic model and the trace
predictor; :func:`required_local_bytes` is the standalone capacity
probe the autotuner uses.
"""

from repro.analyze.batch_safety import check_batch_safety
from repro.analyze.bounds import check_bounds
from repro.analyze.coalescing import check_coalescing, predict_trace
from repro.analyze.divergence import check_divergence
from repro.analyze.driver import analyze_matrix, analyze_plan
from repro.analyze.localmem import check_localmem, required_local_bytes
from repro.analyze.model import (
    GlobalAccess,
    IndirectAccess,
    KernelModel,
    LocalOp,
    build_model,
)
from repro.analyze.report import (
    CHECKS,
    AnalysisReport,
    Finding,
    KernelAnalysisError,
)
from repro.analyze.symmetric import (
    analyze_sym_matrix,
    analyze_sym_plan,
    build_sym_model,
    predict_trace_l2,
)
from repro.analyze.sharding import (
    ShardCertificate,
    build_shard_subplan,
    certify_shard_plan,
    shard_segment_range,
)

__all__ = [
    "AnalysisReport",
    "CHECKS",
    "Finding",
    "GlobalAccess",
    "IndirectAccess",
    "KernelAnalysisError",
    "KernelModel",
    "LocalOp",
    "ShardCertificate",
    "analyze_matrix",
    "analyze_plan",
    "analyze_sym_matrix",
    "analyze_sym_plan",
    "build_model",
    "build_sym_model",
    "build_shard_subplan",
    "certify_shard_plan",
    "check_batch_safety",
    "check_bounds",
    "check_coalescing",
    "check_divergence",
    "check_localmem",
    "predict_trace",
    "predict_trace_l2",
    "required_local_bytes",
    "shard_segment_range",
]

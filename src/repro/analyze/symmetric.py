"""Analyzer support for symmetric CRSD codelets.

The transpose contribution is a new access shape: full diagonal ``-o``
reads the stored ``+o`` run at ``runbase - o + seg*mrows + lid`` behind
a ``idx >= runbase`` lower guard.  That is still an affine
unit-lane-stride access, so :func:`build_sym_model` expresses it as an
ordinary :class:`~repro.analyze.model.GlobalAccess` and every existing
checker (bounds, local memory, batch safety, coalescing lint + exact
L2-off trace prediction) applies unmodified.  :func:`analyze_sym_plan`
adds the sym-specific render cross-check and the half-slab analogue of
the paper's perfect-coalescing claim: the *unguarded* (forward) run
loads must coalesce perfectly whenever ``mrows`` is wavefront-aligned.

:func:`predict_trace_l2` extends the closed-form prediction to devices
*with* the L2 model enabled: it replays the per-group, program-ordered
segment streams — exactly what the per-group engine feeds the
:class:`~repro.ocl.memory.SegmentCache`, and what the batched engine's
deferred ``finalize`` reproduces — through a fresh cache and recomputes
``global_load_transactions``/``l2_hits``.  It works for full CRSD
models too, which closes the ROADMAP gap of the L2-off-only predictor:
the obs-layer DRAM-bytes metric for a symmetric matrix can be checked
against a static prediction on the real device model.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analyze.batch_safety import check_batch_safety
from repro.analyze.bounds import check_bounds
from repro.analyze.coalescing import (
    _count_affine,
    _itemsize_of,
    check_coalescing,
    predict_trace,
)
from repro.analyze.divergence import check_divergence
from repro.analyze.localmem import check_localmem
from repro.analyze.model import GlobalAccess, KernelModel, RegionModel
from repro.analyze.report import AnalysisReport
from repro.codegen.plan import KernelPlan
from repro.codegen.sym_codelet import (
    build_sym_plan,
    emit_sym_python_source,
    expected_sym_functions,
    full_offsets,
    generate_sym_opencl_source,
)
from repro.codegen.validator import (
    OpenCLSyntaxError,
    PythonCodeletSyntaxError,
    validate_opencl_source,
    validate_python_source,
)
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.memory import SegmentCache, wavefront_segments
from repro.ocl.trace import KernelTrace

_REAL_ITEMSIZE = {"double": 8, "fp64": 8, "single": 4, "fp32": 4}


def build_sym_model(plan: KernelPlan,
                    precision: str = "double") -> KernelModel:
    """Symbolic access model of a symmetric plan, in program order."""
    isize = _REAL_ITEMSIZE.get(precision.lower())
    if isize is None:
        raise ValueError(f"unknown precision {precision!r}")
    sym_slots = sum(r.nrs * r.nnz_per_segment for r in plan.regions)
    model = KernelModel(
        plan=plan,
        itemsize=isize,
        index_itemsize=4,
        lanes=plan.local_size,
        buffer_sizes={"sym_val": sym_slots, "x": plan.ncols, "y": plan.nrows},
    )
    for region in plan.regions:
        m = region.mrows
        run = region.nrs * m
        stored = region.groups[0].offsets
        rm = RegionModel(region=region, y_row_base=region.start_row)
        glabel = f"region {region.index} SYM group"
        for off in full_offsets(stored):
            o = abs(off)
            d = stored.index(o)
            runbase = region.slab_base + d * run
            if off >= 0:
                rm.accesses.append(GlobalAccess(
                    buffer="sym_val", kind="load",
                    base=runbase, seg_coeff=m, lane_coeff=1,
                    nsegs=region.nrs, lanes=m,
                    label=f"{glabel} sym_val[stored +{off}]",
                ))
            else:
                # the transpose read: the partner row's stored slot,
                # guarded below by the run base (rows before SR have no
                # partner in this region — the build declined those)
                rm.accesses.append(GlobalAccess(
                    buffer="sym_val", kind="load",
                    base=runbase - o, seg_coeff=m, lane_coeff=1,
                    nsegs=region.nrs, lanes=m,
                    guard_lo=runbase,
                    label=f"{glabel} sym_val[mirror {off}]",
                ))
            rm.accesses.append(GlobalAccess(
                buffer="x", kind="load",
                base=region.start_row + off, seg_coeff=m, lane_coeff=1,
                nsegs=region.nrs, lanes=m,
                guard_lo=0, guard_hi=plan.ncols,
                label=f"{glabel} x[off={off}]",
            ))
            rm.flops_per_group += 2 * m
        rm.accesses.append(GlobalAccess(
            buffer="y", kind="store",
            base=region.start_row, seg_coeff=m, lane_coeff=1,
            nsegs=region.nrs, lanes=m,
            guard_hi=plan.nrows,
            label=f"region {region.index} y store",
        ))
        model.regions.append(rm)
    return model


def analyze_sym_plan(
    plan: KernelPlan,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    check_render: bool = True,
) -> AnalysisReport:
    """Run every static checker over a symmetric plan."""
    model = build_sym_model(plan, precision=precision)
    report = AnalysisReport(plan=plan)
    check_bounds(model, report)
    check_localmem(model, report, device)
    check_batch_safety(model, report)
    check_coalescing(model, report, device)
    # half-slab analogue of the paper's headline claim: the forward
    # (unguarded) run loads coalesce perfectly under wavefront alignment
    if plan.regions and plan.mrows % device.wavefront_size == 0:
        eff = _sym_val_forward_efficiency(model, device)
        if eff is not None and eff < 1.0:
            report.add(
                "coalescing", "error", "sym dia kernel",
                f"forward sym_dia_val loads are not perfectly coalesced "
                f"(static efficiency {eff:.4f} < 1.0) although mrows="
                f"{plan.mrows} is wavefront-aligned",
            )
    if check_render:
        _check_sym_render(plan, precision, report)
    return report


def analyze_sym_matrix(
    sym,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    check_render: bool = True,
) -> AnalysisReport:
    """Build the symmetric plan for ``sym`` and analyze it."""
    plan = build_sym_plan(sym)
    return analyze_sym_plan(plan, device=device, precision=precision,
                            check_render=check_render)


# ----------------------------------------------------------------------
# L2-aware exact trace prediction
# ----------------------------------------------------------------------

def predict_trace_l2(model: KernelModel,
                     device: DeviceSpec = TESLA_C2050
                     ) -> Optional[KernelTrace]:
    """Exact :class:`KernelTrace` prediction with the L2 model *on*.

    Starts from the L2-off closed form and recomputes
    ``global_load_transactions``/``l2_hits`` by replaying the per-group
    segment streams — (region, seg) in launch order, accesses in
    program order, wavefronts ascending — through a fresh LRU
    :class:`~repro.ocl.memory.SegmentCache`.  Stores are replayed as
    write-allocates (lines become resident, DRAM write-back stays
    charged), matching both execution engines.  Returns ``None`` when
    scatter index data is missing (same contract as
    :func:`~repro.analyze.coalescing.predict_trace`).
    """
    tr = predict_trace(model, device)
    if tr is None or device.l2_bytes <= 0:
        return tr
    cache = SegmentCache(device.l2_bytes, device.transaction_bytes)
    load_txn = 0
    hits = 0

    def touch(buffer: str, kind: str, segments: np.ndarray) -> None:
        nonlocal load_txn, hits
        if not segments.size:
            return
        misses = cache.access(buffer, segments)
        if kind == "load":
            load_txn += misses
            hits += int(segments.size) - misses

    for rm in model.regions:
        for seg in range(rm.region.nrs):
            for acc in rm.accesses:
                touch(acc.buffer, acc.kind,
                      _affine_segments(acc, seg, model, device))
    if model.scatter is not None:
        for g, item in _scatter_program(model):
            if isinstance(item, GlobalAccess):
                touch(item.buffer, item.kind,
                      _affine_segments(item, g, model, device))
            else:
                active = None if item.active is None else item.active[g]
                _, segments, _ = wavefront_segments(
                    item.index_grid[g], model.itemsize,
                    device.wavefront_size, device.transaction_bytes, active)
                touch(item.buffer, item.kind, segments)
    tr.global_load_transactions = load_txn
    tr.l2_hits = hits
    return tr


def _affine_segments(acc: GlobalAccess, seg: int, model: KernelModel,
                     device: DeviceSpec) -> np.ndarray:
    """The transaction-segment stream one group's execution of ``acc``
    feeds the L2 — per wavefront the sorted unique segments of the
    active lanes, concatenated in wavefront order."""
    b = _itemsize_of(acc, model)
    T = device.transaction_bytes
    w = device.wavefront_size
    base_s = acc.base + acc.seg_coeff * seg
    if acc.lane_coeff != 1:
        lanes = np.arange(acc.lanes, dtype=np.int64)
        idx = base_s + acc.lane_coeff * lanes
        active = np.ones(acc.lanes, dtype=bool)
        if acc.lane_bound is not None:
            active &= lanes < acc.lane_bound
        if acc.guard_lo is not None:
            active &= idx >= acc.guard_lo
        if acc.guard_hi is not None:
            active &= idx < acc.guard_hi
        _, segments, _ = wavefront_segments(idx, b, w, T, active)
        return segments
    alo = 0
    ahi = acc.lanes
    if acc.lane_bound is not None:
        ahi = min(ahi, acc.lane_bound)
    if acc.guard_lo is not None:
        alo = max(alo, acc.guard_lo - base_s)
    if acc.guard_hi is not None:
        ahi = min(ahi, acc.guard_hi - base_s)
    out: List[np.ndarray] = []
    nwf = -(-acc.lanes // w)
    for wf in range(nwf):
        lo = max(alo, wf * w)
        hi = min(ahi, min((wf + 1) * w, acc.lanes))
        if hi <= lo:
            continue
        first = (base_s + lo) * b // T
        last = (base_s + hi - 1) * b // T
        out.append(np.arange(first, last + 1, dtype=np.int64))
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out)


def _scatter_program(model: KernelModel):
    """Yield ``(group, access-or-indirect)`` in the scatter kernel's
    per-group program order: per ELL entry the colval load, the val
    load and the ``nvec`` x gathers; then the rowno load and the
    ``nvec`` y stores."""
    sm = model.scatter
    nvec = model.plan.nvec
    program: List = []
    for k in range(sm.width):
        program.append(sm.accesses[2 * k])      # scatter_colval[k]
        program.append(sm.accesses[2 * k + 1])  # scatter_val[k]
        program.extend(sm.indirect[k * nvec:(k + 1) * nvec])
    program.append(sm.accesses[-1])             # scatter_rowno
    program.extend(sm.indirect[sm.width * nvec:])
    for g in range(sm.num_groups):
        for item in program:
            yield g, item


# ----------------------------------------------------------------------
# sym-specific checks
# ----------------------------------------------------------------------

def _sym_val_forward_efficiency(model: KernelModel,
                                device: DeviceSpec) -> Optional[float]:
    tr = KernelTrace()
    found = False
    for rm in model.regions:
        for acc in rm.accesses:
            if (acc.buffer == "sym_val" and acc.lane_coeff == 1
                    and not acc.guarded):
                _count_affine(tr, acc, model, device)
                found = True
    if not found:
        return None
    return tr.load_coalescing_efficiency(model.itemsize,
                                         device.transaction_bytes)


def _check_sym_render(plan: KernelPlan, precision: str,
                      report: AnalysisReport) -> None:
    import re

    opencl_src = generate_sym_opencl_source(plan, precision=precision)
    python_src = emit_sym_python_source(plan)
    try:
        validate_opencl_source(opencl_src)
    except OpenCLSyntaxError as exc:
        report.add("render", "error", "opencl rendering",
                   f"structural validation failed: {exc}")
    try:
        validate_python_source(python_src,
                               expected=expected_sym_functions(plan))
    except PythonCodeletSyntaxError as exc:
        report.add("render", "error", "python rendering",
                   f"validation failed: {exc}")

    check_divergence(python_src, opencl_src, report)

    cases = re.findall(r"\bcase\s+(\d+)\s*:", opencl_src)
    if len(cases) != len(plan.regions):
        report.add(
            "render", "error", "opencl rendering",
            f"switch has {len(cases)} case labels for {len(plan.regions)} "
            "regions — plan and rendering disagree",
        )
    if "barrier(" in opencl_src or "__local" in opencl_src:
        report.add(
            "render", "error", "opencl rendering",
            "symmetric codelets must not use local memory or barriers",
        )

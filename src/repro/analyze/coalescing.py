"""Coalescing linter and exact static trace prediction.

Every access the generator emits is lane-contiguous (``lane_coeff ==
1``): a wavefront touches one run of consecutive elements, which is the
paper's coalescing claim (Section III-B/IV: work-item ``i`` of a
segment reads slab position ``d*mrows + i`` — consecutive lanes,
consecutive addresses, stride ``mrows`` *between* diagonals).  The
linter proves that property symbolically and, because every base
address and guard is a literal, goes further: it computes the *exact*
per-wavefront transaction counts the dynamic trace would record — no
kernel execution, just closed-form arithmetic over the ``(seg, lane)``
iteration space.

The prediction corresponds to a device with the L2 model disabled
(``l2_bytes=0``): coalescing is a property of the access pattern; L2
residency is orthogonal and order-dependent.  Differential tests run
the real kernels on such a device and assert counter equality
bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.analyze.model import GlobalAccess, IndirectAccess, KernelModel
from repro.analyze.report import AnalysisReport
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.memory import wavefront_segments
from repro.ocl.trace import KernelTrace


def predict_trace(model: KernelModel,
                  device: DeviceSpec = TESLA_C2050) -> Optional[KernelTrace]:
    """Exact static :class:`KernelTrace` prediction (L2 disabled).

    Returns ``None`` when the matrix has scatter rows but the model was
    built without the scatter index data (the indirect accesses are
    then unpredictable).
    """
    tr = KernelTrace()
    plan = model.plan
    w = device.wavefront_size
    nwf_per_group = -(-model.lanes // w)
    tr.work_groups = plan.num_groups
    tr.wavefronts = plan.num_groups * nwf_per_group
    for rm in model.regions:
        nrs = rm.region.nrs
        for acc in rm.accesses:
            _count_affine(tr, acc, model, device)
        for op in rm.local_ops:
            if op.op == "store":
                tr.local_store_bytes += op.lane_bound * model.itemsize * nrs
            elif op.op == "load":
                tr.local_load_bytes += op.lane_bound * model.itemsize * nrs
        tr.barriers += rm.barriers_per_group * nrs
        tr.flops += rm.flops_per_group * nrs
    if model.scatter is not None:
        sm = model.scatter
        tr.work_groups += sm.num_groups
        tr.wavefronts += sm.num_groups * nwf_per_group
        for acc in sm.accesses:
            _count_affine(tr, acc, model, device)
        for ind in sm.indirect:
            if ind.index_grid is None:
                return None
            _count_indirect(tr, ind, model, device)
        tr.flops += sm.flops_total
    return tr


def check_coalescing(model: KernelModel, report: AnalysisReport,
                     device: DeviceSpec = TESLA_C2050) -> None:
    """Lint lane contiguity and fill the report's static predictions."""
    for rm in model.regions:
        _lint_contiguity(rm.accesses, f"region {rm.region.index}", report)
    if model.scatter is not None:
        _lint_contiguity(model.scatter.accesses, "scatter", report)
        for ind in model.scatter.indirect:
            if ind.index_grid is None:
                report.add(
                    "coalescing", "info", "scatter",
                    f"{ind.label}: data-dependent gather; supply the "
                    "scatter index arrays for an exact prediction",
                )
    tr = predict_trace(model, device)
    report.predicted = tr
    if tr is not None:
        report.load_coalescing_efficiency = tr.load_coalescing_efficiency(
            model.itemsize, device.transaction_bytes)
        report.store_coalescing_efficiency = tr.store_coalescing_efficiency(
            device.transaction_bytes)
    # the paper's headline claim: with mrows a multiple of the
    # wavefront, the dia_val slab loads coalesce perfectly
    if (model.plan.regions and model.plan.mrows % device.wavefront_size == 0):
        eff = _dia_val_efficiency(model, device)
        if eff is not None and eff < 1.0:
            report.add(
                "coalescing", "error", "dia kernel",
                f"crsd_dia_val loads are not perfectly coalesced "
                f"(static efficiency {eff:.4f} < 1.0) although mrows="
                f"{model.plan.mrows} is wavefront-aligned",
            )


# ----------------------------------------------------------------------
# counting
# ----------------------------------------------------------------------

def _count_affine(tr: KernelTrace, acc: GlobalAccess, model: KernelModel,
                  device: DeviceSpec) -> None:
    req, txn, useful = _affine_traffic(acc, model, device)
    if acc.kind == "load":
        tr.global_load_requests += req
        tr.global_load_transactions += txn
        tr.global_load_bytes_useful += useful
    else:
        tr.global_store_requests += req
        tr.global_store_transactions += txn
        tr.global_store_bytes_useful += useful


def _itemsize_of(acc: GlobalAccess, model: KernelModel) -> int:
    if acc.buffer in ("scatter_colval", "scatter_rowno"):
        return model.index_itemsize
    return model.itemsize


def _affine_traffic(acc: GlobalAccess, model: KernelModel,
                    device: DeviceSpec):
    """(requests, transactions, useful_bytes) of one affine access over
    its full launch range — closed form per (seg, wavefront)."""
    b = _itemsize_of(acc, model)
    T = device.transaction_bytes
    w = device.wavefront_size
    if acc.nsegs <= 0 or acc.lanes <= 0:
        return 0, 0, 0
    if acc.lane_coeff != 1:
        return _affine_traffic_slow(acc, model, device)
    segs = np.arange(acc.nsegs, dtype=np.int64)
    base_s = acc.base + acc.seg_coeff * segs
    # active lane window [alo, ahi) per seg
    alo = np.zeros(acc.nsegs, dtype=np.int64)
    ahi = np.full(acc.nsegs, acc.lanes, dtype=np.int64)
    if acc.lane_bound is not None:
        np.minimum(ahi, acc.lane_bound, out=ahi)
    if acc.guard_lo is not None:
        np.maximum(alo, acc.guard_lo - base_s, out=alo)
    if acc.guard_hi is not None:
        np.minimum(ahi, acc.guard_hi - base_s, out=ahi)
    req = txn = useful = 0
    nwf = -(-acc.lanes // w)
    for wf in range(nwf):
        c0, c1 = wf * w, min((wf + 1) * w, acc.lanes)
        lo = np.maximum(alo, c0)
        hi = np.minimum(ahi, c1)
        cnt = hi - lo
        live = cnt > 0
        n_live = int(np.count_nonzero(live))
        if not n_live:
            continue
        req += n_live
        useful += int(cnt[live].sum()) * b
        first = (base_s[live] + lo[live]) * b // T
        last = (base_s[live] + hi[live] - 1) * b // T
        txn += int((last - first).sum()) + n_live
    return req, txn, useful


def _affine_traffic_slow(acc: GlobalAccess, model: KernelModel,
                         device: DeviceSpec):
    """Fallback for non-unit lane strides (only reachable from
    deliberately corrupted models): enumerate lanes explicitly."""
    b = _itemsize_of(acc, model)
    lanes = np.arange(acc.lanes, dtype=np.int64)
    req = txn = useful = 0
    for seg in range(acc.nsegs):
        idx = acc.base + acc.seg_coeff * seg + acc.lane_coeff * lanes
        active = np.ones(acc.lanes, dtype=bool)
        if acc.lane_bound is not None:
            active &= lanes < acc.lane_bound
        if acc.guard_lo is not None:
            active &= idx >= acc.guard_lo
        if acc.guard_hi is not None:
            active &= idx < acc.guard_hi
        r, segments, u = wavefront_segments(
            idx, b, device.wavefront_size, device.transaction_bytes, active)
        req += r
        txn += int(segments.size)
        useful += u
    return req, txn, useful


def _count_indirect(tr: KernelTrace, ind: IndirectAccess,
                    model: KernelModel, device: DeviceSpec) -> None:
    b = model.itemsize  # x and y hold reals
    req = txn = useful = 0
    for g in range(ind.index_grid.shape[0]):
        r, segments, u = wavefront_segments(
            ind.index_grid[g], b, device.wavefront_size,
            device.transaction_bytes,
            None if ind.active is None else ind.active[g])
        req += r
        txn += int(segments.size)
        useful += u
    if ind.kind == "load":
        tr.global_load_requests += req
        tr.global_load_transactions += txn
        tr.global_load_bytes_useful += useful
    else:
        tr.global_store_requests += req
        tr.global_store_transactions += txn
        tr.global_store_bytes_useful += useful


# ----------------------------------------------------------------------
# lint
# ----------------------------------------------------------------------

def _lint_contiguity(accesses: Iterable[GlobalAccess], where: str,
                     report: AnalysisReport) -> None:
    for acc in accesses:
        if acc.lane_coeff != 1:
            report.add(
                "coalescing", "error", where,
                f"{acc.label}: lane stride {acc.lane_coeff} != 1 — "
                "wavefront accesses are not contiguous and cannot "
                "coalesce",
            )


def _dia_val_efficiency(model: KernelModel,
                        device: DeviceSpec) -> Optional[float]:
    tr = KernelTrace()
    found = False
    for rm in model.regions:
        for acc in rm.accesses:
            if acc.buffer == "dia_val" and acc.lane_coeff == 1:
                _count_affine(tr, acc, model, device)
                found = True
    if not found:
        return None
    return tr.load_coalescing_efficiency(model.itemsize,
                                         device.transaction_bytes)

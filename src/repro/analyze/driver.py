"""Analysis driver: one call runs every checker over a kernel plan.

:func:`analyze_plan` is the programmatic entry point (the ``repro
analyze`` CLI, the strict-mode codegen hook and the autotuner all call
it); :func:`analyze_matrix` is the convenience wrapper that starts from
a built :class:`~repro.core.crsd.CRSDMatrix` and feeds the baked
scatter index arrays to the model so the indirect accesses and the
batched-safety prover get exact data.

Besides the five checkers the driver cross-checks the *renderings*
against the model (check ``render``): both generated sources must pass
the structural validators, the OpenCL ``switch`` must carry exactly one
``case`` per region, the text's ``barrier(CLK_LOCAL_MEM_FENCE)`` count
must equal the model's barrier count, and the ``__local`` tile
declaration must be exactly ``max_tile_len`` elements.  A code
generator drifting from its own plan is caught here before any kernel
runs.
"""

from __future__ import annotations

import re
from typing import Optional

import numpy as np

from repro.analyze.batch_safety import check_batch_safety
from repro.analyze.bounds import check_bounds
from repro.analyze.coalescing import check_coalescing
from repro.analyze.divergence import check_divergence
from repro.analyze.localmem import check_localmem
from repro.analyze.model import build_model
from repro.analyze.report import AnalysisReport
from repro.codegen.opencl_source import generate_opencl_source
from repro.codegen.plan import KernelPlan, build_plan
from repro.codegen.python_codelet import emit_python_source
from repro.codegen.validator import (
    OpenCLSyntaxError,
    PythonCodeletSyntaxError,
    validate_opencl_source,
    validate_python_source,
)
from repro.ocl.device import DeviceSpec, TESLA_C2050


def analyze_plan(
    plan: KernelPlan,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    scatter_colval: Optional[np.ndarray] = None,
    scatter_rowno: Optional[np.ndarray] = None,
    check_render: bool = True,
) -> AnalysisReport:
    """Run all static checkers over ``plan``; never executes a kernel."""
    model = build_model(plan, precision=precision,
                        scatter_colval=scatter_colval,
                        scatter_rowno=scatter_rowno)
    report = AnalysisReport(plan=plan)
    check_bounds(model, report)
    check_localmem(model, report, device)
    check_batch_safety(model, report)
    check_coalescing(model, report, device)
    if check_render:
        _check_render(model, plan, precision, report)
    return report


def analyze_matrix(
    crsd,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    use_local_memory: bool = True,
    nvec: int = 1,
    check_render: bool = True,
) -> AnalysisReport:
    """Build the plan for ``crsd`` and analyze it with exact scatter
    index data (the arrays the runner would bake into the buffers)."""
    plan = build_plan(crsd, use_local_memory=use_local_memory, nvec=nvec)
    return analyze_plan(
        plan,
        device=device,
        precision=precision,
        scatter_colval=crsd.scatter_colval,
        scatter_rowno=crsd.scatter_rowno,
        check_render=check_render,
    )


# ----------------------------------------------------------------------
# render cross-check
# ----------------------------------------------------------------------

def _check_render(model, plan: KernelPlan, precision: str,
                  report: AnalysisReport) -> None:
    opencl_src = generate_opencl_source(plan, precision=precision)
    python_src = emit_python_source(plan)
    try:
        validate_opencl_source(opencl_src)
    except OpenCLSyntaxError as exc:
        report.add("render", "error", "opencl rendering",
                   f"structural validation failed: {exc}")
    try:
        validate_python_source(python_src, expected=_expected_codelets(plan))
    except PythonCodeletSyntaxError as exc:
        report.add("render", "error", "python rendering",
                   f"validation failed: {exc}")

    check_divergence(python_src, opencl_src, report)

    cases = re.findall(r"\bcase\s+(\d+)\s*:", opencl_src)
    if len(cases) != len(plan.regions):
        report.add(
            "render", "error", "opencl rendering",
            f"switch has {len(cases)} case labels for {len(plan.regions)} "
            "regions — plan and rendering disagree",
        )
    model_barriers = sum(
        1 for rm in model.regions for op in rm.opencl_local_ops
        if op.op == "barrier"
    )
    text_barriers = opencl_src.count("barrier(CLK_LOCAL_MEM_FENCE);")
    if text_barriers != model_barriers:
        report.add(
            "render", "error", "opencl rendering",
            f"{text_barriers} barrier(CLK_LOCAL_MEM_FENCE) calls emitted "
            f"but the local-memory model requires {model_barriers} — "
            "barrier placement drifted from the plan",
        )
    decl = re.search(r"__local\s+\w+\s+xtile\[(\d+)\]", opencl_src)
    if plan.use_local_memory and plan.max_tile_len:
        if decl is None:
            report.add("render", "error", "opencl rendering",
                       "local-memory plan but no __local xtile declaration")
        elif int(decl.group(1)) != plan.max_tile_len:
            report.add(
                "render", "error", "opencl rendering",
                f"xtile declared with {decl.group(1)} elements; plan "
                f"max_tile_len is {plan.max_tile_len}",
            )
    elif decl is not None:
        report.add("render", "error", "opencl rendering",
                   "__local xtile declared although the plan does not "
                   "use local memory")


def _expected_codelets(plan: KernelPlan):
    names = ["crsd_dia_kernel", "crsd_dia_kernel_batched"]
    for i in range(len(plan.regions)):
        names.append(f"_codelet_p{i}")
        names.append(f"_codelet_p{i}_batched")
    if plan.scatter.num_rows:
        names.append("crsd_scatter_kernel")
        names.append("crsd_scatter_kernel_batched")
    return names

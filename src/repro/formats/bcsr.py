"""Block CSR (BCSR) format.

From the related work (Section V; Im & Yelick's register blocking):
the matrix is tiled into dense ``r × c`` blocks and any tile containing
at least one nonzero is stored densely.  Good for FEM matrices whose
nonzeros cluster in dense blocks, but — like DIA — it pays explicit
zero fill whenever the structure does not match the tile size, which is
the trade-off the paper's fill-ratio ablation quantifies.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseFormat,
    check_vector,
)
from repro.formats.coo import COOMatrix


class BCSRMatrix(SparseFormat):
    """BCSR sparse matrix with fixed block size ``(r, c)``.

    Parameters
    ----------
    block_indptr:
        ``nblockrows + 1`` pointers into ``block_cols``.
    block_cols:
        Block-column index of every stored block.
    blocks:
        ``(nblocks, r, c)`` dense block values (zero-filled).
    shape:
        *Logical* matrix shape (need not be a multiple of the block
        size; edge blocks are zero-padded).
    block_shape:
        ``(r, c)``.
    """

    name = "bcsr"

    def __init__(
        self,
        block_indptr: np.ndarray,
        block_cols: np.ndarray,
        blocks: np.ndarray,
        shape: Tuple[int, int],
        block_shape: Tuple[int, int],
    ):
        super().__init__(shape)
        r, c = int(block_shape[0]), int(block_shape[1])
        if r <= 0 or c <= 0:
            raise FormatError(f"block shape must be positive, got {block_shape}")
        self.block_shape = (r, c)
        nblockrows = -(-self.nrows // r)
        nblockcols = -(-self.ncols // c)
        block_indptr = np.asarray(block_indptr, dtype=np.int64)
        block_cols = np.asarray(block_cols, dtype=np.int64)
        blocks = np.asarray(blocks, dtype=VALUE_DTYPE)
        if block_indptr.size != nblockrows + 1 or block_indptr[0] != 0:
            raise FormatError("block_indptr must have nblockrows+1 entries starting at 0")
        if np.any(np.diff(block_indptr) < 0):
            raise FormatError("block_indptr must be non-decreasing")
        if block_cols.size != block_indptr[-1]:
            raise FormatError("block_cols length must equal block_indptr[-1]")
        if block_cols.size and (block_cols.min() < 0 or block_cols.max() >= nblockcols):
            raise FormatError("block column out of range")
        if blocks.shape != (block_cols.size, r, c):
            raise FormatError(f"blocks must be (nblocks, {r}, {c}), got {blocks.shape}")
        self.block_indptr = block_indptr.astype(INDEX_DTYPE)
        self.block_cols = block_cols.astype(INDEX_DTYPE)
        self.blocks = blocks
        self._nblockrows = nblockrows
        self._nblockcols = nblockcols

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, block_shape: Tuple[int, int] = (2, 2)) -> "BCSRMatrix":
        r, c = int(block_shape[0]), int(block_shape[1])
        if r <= 0 or c <= 0:
            raise FormatError(f"block shape must be positive, got {block_shape}")
        nblockrows = -(-coo.nrows // r)
        nblockcols = -(-coo.ncols // c)
        brow = coo.rows.astype(np.int64) // r
        bcol = coo.cols.astype(np.int64) // c
        keys = brow * nblockcols + bcol
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        unique_keys, block_of_entry = np.unique(keys_sorted, return_inverse=True)
        nblocks = unique_keys.size
        blocks = np.zeros((nblocks, r, c), dtype=VALUE_DTYPE)
        rr = coo.rows.astype(np.int64)[order] % r
        cc = coo.cols.astype(np.int64)[order] % c
        blocks[block_of_entry, rr, cc] = coo.vals[order]
        block_rows = unique_keys // nblockcols
        block_cols = unique_keys % nblockcols
        indptr = np.zeros(nblockrows + 1, dtype=np.int64)
        np.cumsum(np.bincount(block_rows, minlength=nblockrows), out=indptr[1:])
        return cls(indptr, block_cols, blocks, coo.shape, (r, c))

    @classmethod
    def from_dense(cls, dense: np.ndarray, block_shape: Tuple[int, int] = (2, 2)) -> "BCSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), block_shape)

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.blocks))

    @property
    def nblocks(self) -> int:
        return int(self.block_cols.size)

    @property
    def stored_elements(self) -> int:
        return int(self.blocks.size)

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = check_vector(x, self.ncols)
        r, c = self.block_shape
        # pad x to a whole number of block columns
        xp = np.zeros(self._nblockcols * c, dtype=x.dtype)
        xp[: self.ncols] = x
        yp = np.zeros(self._nblockrows * r, dtype=np.result_type(self.blocks, x))
        if self.nblocks:
            # gather each block's x slice: (nblocks, c)
            xs = xp.reshape(self._nblockcols, c)[self.block_cols.astype(np.int64)]
            partial = np.einsum("brc,bc->br", self.blocks, xs)
            block_rows = np.repeat(
                np.arange(self._nblockrows, dtype=np.int64),
                np.diff(self.block_indptr.astype(np.int64)),
            )
            np.add.at(yp.reshape(self._nblockrows, r), block_rows, partial)
        y = yp[: self.nrows]
        if out is not None:
            out[:] = y
            return out
        return y

    def to_coo(self) -> COOMatrix:
        r, c = self.block_shape
        bidx, rr, cc = np.nonzero(self.blocks)
        block_rows = np.repeat(
            np.arange(self._nblockrows, dtype=np.int64),
            np.diff(self.block_indptr.astype(np.int64)),
        )
        rows = block_rows[bidx] * r + rr
        cols = self.block_cols.astype(np.int64)[bidx] * c + cc
        vals = self.blocks[bidx, rr, cc]
        inside = (rows < self.nrows) & (cols < self.ncols)
        return COOMatrix(rows[inside], cols[inside], vals[inside], self.shape)

    def array_inventory(self) -> Dict[str, np.ndarray]:
        return {
            "block_indptr": self.block_indptr,
            "block_cols": self.block_cols,
            "blocks": self.blocks,
        }

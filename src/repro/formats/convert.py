"""Conversions between formats and dense arrays.

All conversions route through canonical COO, so correctness of the
whole lattice reduces to each format's ``from_coo``/``to_coo`` pair —
which the test suite round-trips exhaustively.
"""

from __future__ import annotations

from typing import Type, Union

import numpy as np

from repro.formats.base import FormatError, SparseFormat
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dcsr import DeltaCSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix

#: registry of format name -> class, used by the bench harness to
#: instantiate formats by string.
FORMATS = {
    "coo": COOMatrix,
    "csr": CSRMatrix,
    "dia": DIAMatrix,
    "ell": ELLMatrix,
    "hyb": HYBMatrix,
    "bcsr": BCSRMatrix,
    "dcsr": DeltaCSRMatrix,
}


def from_dense(dense: np.ndarray, fmt: str = "coo", **kwargs) -> SparseFormat:
    """Build a sparse matrix of format ``fmt`` from a dense array."""
    cls = _lookup(fmt)
    return cls.from_dense(dense, **kwargs)


def to_dense(matrix: SparseFormat) -> np.ndarray:
    """Materialise any format as a dense ndarray."""
    return matrix.todense()


def convert(matrix: SparseFormat, fmt: Union[str, Type[SparseFormat]], **kwargs) -> SparseFormat:
    """Convert ``matrix`` to another format (via COO)."""
    cls = _lookup(fmt) if isinstance(fmt, str) else fmt
    coo = matrix.to_coo()
    if cls is COOMatrix:
        return coo
    return cls.from_coo(coo, **kwargs)


def _lookup(fmt: str) -> Type[SparseFormat]:
    try:
        return FORMATS[fmt.lower()]
    except KeyError:
        raise FormatError(
            f"unknown format {fmt!r}; known: {sorted(FORMATS)}"
        ) from None

"""Hybrid ELL + COO (HYB) format.

Bell & Garland's default GPU format: a regular ELL slab of width ``K'``
holds the first ``K'`` entries of every row and the overflow entries go
to a COO tail.  Section IV of the paper notes that with the default
split heuristic, matrices 1–14 of the suite land entirely in ELL while
matrices 15–23 put roughly 0.2%–2.1% of their nonzeros into COO — an
observation `benchmarks/test_hyb_split_and_memory.py` reproduces.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.formats.base import FormatError, SparseFormat, check_vector
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix

#: below this many overflow rows the COO tail is not worth its launch
#: overhead (cusp's ``breakeven_threshold``).
DEFAULT_BREAKEVEN_ROWS = 4096

#: cusp's ``relative_speed``: ELL is assumed this many times faster than
#: COO per entry, so a column of the ELL slab is worth adding while at
#: least ``nrows / relative_speed`` rows still use it.
DEFAULT_RELATIVE_SPEED = 3.0


def compute_hyb_width(
    row_lengths: np.ndarray,
    relative_speed: float = DEFAULT_RELATIVE_SPEED,
    breakeven_rows: int = DEFAULT_BREAKEVEN_ROWS,
) -> int:
    """Choose the ELL width ``K'`` with the cusp-style heuristic.

    Grow the slab one column at a time and stop once the rows still
    extending past the current width are few both *relatively* (fewer
    than ``nrows / relative_speed`` — the next column would be mostly
    padding) and *absolutely* (fewer than ``breakeven_rows`` — the tail
    is cheap in COO).  Uniform row lengths therefore keep the matrix
    entirely in ELL (the paper's matrices 1–14), while a small
    population of long rows produces a small COO tail (matrices 15–23,
    0.2%–2.1% of nnz).
    """
    row_lengths = np.asarray(row_lengths, dtype=np.int64)
    nrows = row_lengths.size
    if nrows == 0:
        return 0
    max_len = int(row_lengths.max())
    hist = np.bincount(row_lengths, minlength=max_len + 1)
    width = 0
    rows_remaining = nrows  # rows with length > width
    for width in range(max_len + 1):
        rows_remaining = nrows - int(hist[: width + 1].sum())
        if relative_speed * rows_remaining < nrows and rows_remaining < breakeven_rows:
            break
    return min(width + (1 if rows_remaining > 0 and width == max_len else 0), max_len)


class HYBMatrix(SparseFormat):
    """HYB sparse matrix: ELL slab of width ``K'`` plus a COO tail.

    Parameters
    ----------
    ell:
        The regular part.
    coo_tail:
        Overflow entries (same shape as the whole matrix).
    """

    name = "hyb"

    def __init__(self, ell: ELLMatrix, coo_tail: COOMatrix):
        if ell.shape != coo_tail.shape:
            raise FormatError(
                f"ELL part {ell.shape} and COO tail {coo_tail.shape} disagree"
            )
        super().__init__(ell.shape)
        self.ell = ell
        self.coo = coo_tail

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        width: Optional[int] = None,
        relative_speed: float = DEFAULT_RELATIVE_SPEED,
        breakeven_rows: int = DEFAULT_BREAKEVEN_ROWS,
    ) -> "HYBMatrix":
        """Split COO into ELL(K') + COO using the default heuristic
        (or an explicit ``width``)."""
        lengths = coo.row_lengths()
        if width is None:
            width = compute_hyb_width(lengths, relative_speed, breakeven_rows)
        width = int(width)
        if coo.nnz == 0:
            return cls(ELLMatrix.from_coo(coo, width=0), COOMatrix.empty(coo.shape))
        starts = np.zeros(coo.nrows, dtype=np.int64)
        np.cumsum(np.bincount(coo.rows, minlength=coo.nrows)[:-1], out=starts[1:])
        within = np.arange(coo.nnz) - starts[coo.rows.astype(np.int64)]
        in_ell = within < width
        ell_part = COOMatrix(
            coo.rows[in_ell], coo.cols[in_ell], coo.vals[in_ell], coo.shape
        )
        tail = COOMatrix(
            coo.rows[~in_ell], coo.cols[~in_ell], coo.vals[~in_ell], coo.shape
        )
        return cls(ELLMatrix.from_coo(ell_part, width=width), tail)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "HYBMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.coo.nnz

    @property
    def stored_elements(self) -> int:
        return self.ell.stored_elements + self.coo.nnz

    @property
    def coo_fraction(self) -> float:
        """Fraction of nonzeros living in the COO tail."""
        nnz = self.nnz
        return self.coo.nnz / nnz if nnz else 0.0

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = check_vector(x, self.ncols)
        y = self.ell.matvec(x, out=out)
        if self.coo.nnz:
            np.add.at(y, self.coo.rows, self.coo.vals * x[self.coo.cols.astype(np.int64)])
        return y

    def to_coo(self) -> COOMatrix:
        a, b = self.ell.to_coo(), self.coo
        return COOMatrix(
            np.concatenate([a.rows, b.rows]),
            np.concatenate([a.cols, b.cols]),
            np.concatenate([a.vals, b.vals]),
            self.shape,
        )

    def array_inventory(self) -> Dict[str, np.ndarray]:
        inv = {f"ell_{k}": v for k, v in self.ell.array_inventory().items()}
        inv.update({f"coo_{k}": v for k, v in self.coo.array_inventory().items()})
        return inv

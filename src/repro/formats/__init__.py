"""Sparse matrix storage formats implemented from scratch.

This package provides the storage formats the paper compares against
(Section I and IV): COO, CSR, DIA, ELL, HYB, plus BCSR from the related
work (Section V).  Every format supports:

- construction from a :class:`~repro.formats.coo.COOMatrix` or a dense
  ``numpy`` array,
- a reference sequential ``matvec`` (the semantics the GPU kernels must
  reproduce),
- exact memory-footprint accounting (:mod:`repro.formats.footprint`),
  which feeds the device-memory capacity check and the performance model.

The canonical interchange representation is COO; :mod:`repro.formats.convert`
holds the conversion helpers.
"""

from repro.formats.base import SparseFormat, FormatError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.bcsr import BCSRMatrix
from repro.formats.dcsr import DeltaCSRMatrix
from repro.formats.convert import from_dense, to_dense, convert
from repro.formats.footprint import footprint_bytes

__all__ = [
    "SparseFormat",
    "FormatError",
    "COOMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "BCSRMatrix",
    "DeltaCSRMatrix",
    "from_dense",
    "to_dense",
    "convert",
    "footprint_bytes",
]

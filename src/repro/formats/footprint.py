"""Memory-footprint accounting for stored formats.

Section IV of the paper observes that DIA in double precision exceeds
the Tesla C2050's 3 GB device memory for the ``af_*_k101`` matrices
(so those bars are missing from Fig. 7), while the single-precision
variant fits.  This module provides the byte accounting that check
relies on, plus a human-readable breakdown used by the format-advisor
example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.formats.base import SparseFormat

#: bytes per value for each precision keyword.
PRECISION_BYTES = {"double": 8, "single": 4, "fp64": 8, "fp32": 4}


def value_itemsize(precision: str) -> int:
    """8 for double/fp64, 4 for single/fp32."""
    try:
        return PRECISION_BYTES[precision.lower()]
    except KeyError:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of {sorted(PRECISION_BYTES)}"
        ) from None


def footprint_bytes(matrix: SparseFormat, precision: str = "double") -> int:
    """Total device bytes needed to hold ``matrix`` at ``precision``."""
    return matrix.nbytes(value_itemsize=value_itemsize(precision))


@dataclass(frozen=True)
class FootprintReport:
    """Per-array byte breakdown of a stored format."""

    format_name: str
    precision: str
    per_array: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.per_array.values())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"{self.format_name} @ {self.precision}: {self.total:,} bytes"]
        for name, nbytes in sorted(self.per_array.items()):
            lines.append(f"  {name:<20s} {nbytes:>14,d}")
        return "\n".join(lines)


def footprint_report(matrix: SparseFormat, precision: str = "double") -> FootprintReport:
    """Detailed per-array footprint of ``matrix``."""
    isz = value_itemsize(precision)
    per = {}
    for name, arr in matrix.array_inventory().items():
        if np.issubdtype(arr.dtype, np.floating):
            per[name] = arr.size * isz
        else:
            per[name] = arr.size * 4
    return FootprintReport(matrix.name, precision, per)


def fits_in_device(matrix: SparseFormat, capacity_bytes: int, precision: str = "double",
                   vector_len: int | None = None) -> bool:
    """Does the matrix (plus its x and y vectors) fit in device memory?"""
    isz = value_itemsize(precision)
    nrows, ncols = matrix.shape
    vec = (vector_len if vector_len is not None else (nrows + ncols)) * isz
    return footprint_bytes(matrix, precision) + vec <= capacity_bytes

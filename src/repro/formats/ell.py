"""ELLPACK/ITPACK (ELL) format.

Stores exactly ``K`` (the maximum row length, or a caller-chosen width)
entries per row; shorter rows are padded.  Column indices of padding
slots point at a valid column (the row's last real column, or 0) with a
zero value, matching the Bell & Garland kernel's convention that padded
lanes still execute but contribute nothing.

On the GPU the arrays are traversed column-major (all rows' k-th entry
contiguous) so one-thread-per-row loads coalesce; we keep the host
arrays ``(nrows, K)`` row-major and expose ``column_major_view`` for the
kernels.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseFormat,
    check_vector,
)
from repro.formats.coo import COOMatrix


class ELLMatrix(SparseFormat):
    """ELL sparse matrix.

    Parameters
    ----------
    indices, data:
        ``(nrows, K)`` arrays of column indices and values.  Padding
        slots carry value 0 and any in-range column index.
    occupancy:
        ``(nrows, K)`` boolean mask of *real* (non-padding) slots.  This
        distinguishes a stored mathematical zero from padding; if
        omitted, every slot with a nonzero value is considered real.
    shape:
        Matrix shape.
    """

    name = "ell"

    def __init__(
        self,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
        occupancy: Optional[np.ndarray] = None,
    ):
        super().__init__(shape)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=VALUE_DTYPE)
        if indices.ndim != 2 or indices.shape[0] != self.nrows:
            raise FormatError(f"indices must be (nrows, K), got {indices.shape}")
        if data.shape != indices.shape:
            raise FormatError("data and indices must have identical shape")
        if indices.size and (indices.min() < 0 or indices.max() >= self.ncols):
            raise FormatError("column index out of range")
        if occupancy is None:
            occupancy = data != 0.0
        else:
            occupancy = np.asarray(occupancy, dtype=bool)
            if occupancy.shape != data.shape:
                raise FormatError("occupancy must match data shape")
            if np.any(data[~occupancy] != 0.0):
                raise FormatError("padding slots must hold zero values")
        self.indices = indices.astype(INDEX_DTYPE)
        self.data = data
        self.occupancy = occupancy

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, width: Optional[int] = None) -> "ELLMatrix":
        """Build from COO.

        ``width`` defaults to the maximum row length; passing a smaller
        width raises (use :class:`~repro.formats.hyb.HYBMatrix` for the
        split form).
        """
        lengths = coo.row_lengths()
        max_len = int(lengths.max()) if lengths.size else 0
        k = max_len if width is None else int(width)
        if k < max_len:
            raise FormatError(
                f"width {k} < maximum row length {max_len}; use HYB to overflow"
            )
        indices = np.zeros((coo.nrows, max(k, 0)), dtype=np.int64)
        data = np.zeros((coo.nrows, max(k, 0)), dtype=VALUE_DTYPE)
        occupancy = np.zeros((coo.nrows, max(k, 0)), dtype=bool)
        if coo.nnz:
            # position of each entry within its row (COO is row-major sorted)
            starts = np.zeros(coo.nrows, dtype=np.int64)
            np.cumsum(np.bincount(coo.rows, minlength=coo.nrows)[:-1], out=starts[1:])
            within = np.arange(coo.nnz) - starts[coo.rows]
            indices[coo.rows, within] = coo.cols
            data[coo.rows, within] = coo.vals
            occupancy[coo.rows, within] = True
        return cls(indices, data, coo.shape, occupancy)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "ELLMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.occupancy.sum())

    @property
    def width(self) -> int:
        """Entries stored per row (K)."""
        return int(self.data.shape[1])

    @property
    def stored_elements(self) -> int:
        return int(self.data.size)

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = check_vector(x, self.ncols)
        y = out if out is not None else np.zeros(self.nrows, dtype=np.result_type(self.data, x))
        if self.width == 0:
            if out is not None:
                y[:] = 0.0
            return y
        acc = (self.data * x[self.indices.astype(np.int64)]).sum(axis=1)
        y[:] = acc
        return y

    def to_coo(self) -> COOMatrix:
        rows2d = np.broadcast_to(
            np.arange(self.nrows, dtype=np.int64)[:, None], self.data.shape
        )
        mask = self.occupancy
        return COOMatrix(
            rows2d[mask],
            self.indices[mask],
            self.data[mask],
            self.shape,
            keep_explicit_zeros=True,
        )

    def array_inventory(self) -> Dict[str, np.ndarray]:
        # occupancy is a host-side construction aid, not transferred to a
        # device, so it does not enter the footprint.
        return {"indices": self.indices, "data": self.data}

    def column_major_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(indices, data)`` transposed to (K, nrows) — the coalesced
        device layout used by the ELL kernel."""
        return self.indices.T, self.data.T

"""Compressed Sparse Row (CSR) format.

The general-purpose baseline of the paper's evaluation (both the
Bell & Garland GPU kernels and the Intel-MKL CPU kernels operate on
CSR).  Stores ``indptr`` (row pointers), ``indices`` (column indices)
and ``data`` (values), rows sorted by column.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseFormat,
    check_vector,
)
from repro.formats.coo import COOMatrix


class CSRMatrix(SparseFormat):
    """CSR sparse matrix.

    Parameters
    ----------
    indptr:
        ``nrows + 1`` row pointers; row ``i`` occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices, data:
        Column indices and values, each of length ``nnz``.
    shape:
        Matrix shape.
    """

    name = "csr"

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ):
        super().__init__(shape)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=VALUE_DTYPE)
        if indptr.ndim != 1 or indptr.size != self.nrows + 1:
            raise FormatError(
                f"indptr must have length nrows+1={self.nrows + 1}, got {indptr.size}"
            )
        if indptr[0] != 0:
            raise FormatError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if indices.size != data.size or indices.size != indptr[-1]:
            raise FormatError("indices/data length must equal indptr[-1]")
        if indices.size and (indices.min() < 0 or indices.max() >= self.ncols):
            raise FormatError("column index out of range")
        self.indptr = indptr.astype(INDEX_DTYPE)
        self.indices = indices.astype(INDEX_DTYPE)
        self.data = data

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Build from canonical (row-major sorted) COO."""
        counts = np.bincount(coo.rows, minlength=coo.nrows)
        indptr = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, coo.cols.copy(), coo.vals.copy(), coo.shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = check_vector(x, self.ncols)
        y = out if out is not None else np.zeros(self.nrows, dtype=np.result_type(self.data, x))
        if out is not None:
            y[:] = 0.0
        if self.nnz == 0:
            return y
        products = self.data * x[self.indices]
        # reduceat needs care: it misbehaves on empty rows (indptr[i] ==
        # indptr[i+1]) and when the final pointer equals len(products).
        starts = self.indptr[:-1].astype(np.int64)
        nonempty = self.indptr[1:] > self.indptr[:-1]
        if nonempty.all():
            y[:] = np.add.reduceat(products, starts)
        else:
            rows_ne = np.flatnonzero(nonempty)
            sums = np.add.reduceat(products, starts[rows_ne])
            y[rows_ne] = sums
        return y

    def matmat(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Blocked SpMM: one pass over the CSR arrays for all ``k``
        right-hand sides (indices read once, not ``k`` times)."""
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != self.ncols:
            raise FormatError(f"X must be ({self.ncols}, k), got {x.shape}")
        k = x.shape[1]
        y = out if out is not None else np.zeros(
            (self.nrows, k), dtype=np.result_type(self.data, x)
        )
        if out is not None:
            if out.shape != (self.nrows, k):
                raise FormatError(f"out must be ({self.nrows}, {k})")
            y[:] = 0.0
        if self.nnz == 0:
            return y
        products = self.data[:, None] * x[self.indices.astype(np.int64)]
        starts = self.indptr[:-1].astype(np.int64)
        nonempty = self.indptr[1:] > self.indptr[:-1]
        rows_ne = np.flatnonzero(nonempty)
        sums = np.add.reduceat(products, starts[rows_ne], axis=0)
        y[rows_ne] = sums
        return y

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr.astype(np.int64))
        )
        return COOMatrix(rows, self.indices, self.data, self.shape, keep_explicit_zeros=True)

    def array_inventory(self) -> Dict[str, np.ndarray]:
        return {"indptr": self.indptr, "indices": self.indices, "data": self.data}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """nnz count of every row."""
        return np.diff(self.indptr.astype(np.int64))

    def row_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(columns, values)`` of row ``i``."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

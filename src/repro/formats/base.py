"""Common machinery shared by all sparse storage formats.

Every concrete format derives from :class:`SparseFormat` and implements
the small abstract surface (``nnz``, ``matvec``, ``to_coo``,
``array_inventory``).  The base class supplies shape/dtype validation,
``__matmul__`` sugar, dense round-tripping and footprint accounting so
that each format module only contains what is genuinely
format-specific.
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple

import numpy as np

#: dtype used for all stored values; kernels cast to float32 on demand.
VALUE_DTYPE = np.float64

#: dtype used for all stored indices (matches the 4-byte ints the paper's
#: GPU kernels use).
INDEX_DTYPE = np.int32


class FormatError(ValueError):
    """Raised when a matrix cannot be represented or validated."""


def check_shape(shape: Tuple[int, int]) -> Tuple[int, int]:
    """Validate and normalise a 2-tuple matrix shape.

    Raises :class:`FormatError` for non-2D, non-positive or non-integer
    shapes.
    """
    try:
        nrows, ncols = shape
    except (TypeError, ValueError) as exc:
        raise FormatError(f"shape must be a 2-tuple, got {shape!r}") from exc
    nrows, ncols = int(nrows), int(ncols)
    if nrows <= 0 or ncols <= 0:
        raise FormatError(f"shape must be positive, got {shape!r}")
    return nrows, ncols


def check_vector(x: np.ndarray, n: int, name: str = "x") -> np.ndarray:
    """Validate a source/destination vector of length ``n``.

    Returns ``x`` as a contiguous 1-D float array (no copy when already
    conforming).
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise FormatError(f"{name} must be 1-D, got ndim={x.ndim}")
    if x.shape[0] != n:
        raise FormatError(f"{name} has length {x.shape[0]}, expected {n}")
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(VALUE_DTYPE)
    return np.ascontiguousarray(x)


class SparseFormat(abc.ABC):
    """Abstract base class for sparse matrix storage formats.

    Concrete formats store their arrays however the format dictates and
    expose them through :meth:`array_inventory` so the footprint
    accountant and the performance model can reason about bytes moved
    without knowing format internals.
    """

    #: short lowercase format name ("csr", "dia", ...), set by subclasses.
    name: str = "abstract"

    def __init__(self, shape: Tuple[int, int]):
        self._shape = check_shape(shape)

    # ------------------------------------------------------------------
    # abstract surface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of *mathematical* nonzeros stored (excluding padding)."""

    @abc.abstractmethod
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Reference sequential y = A @ x.

        This is the golden semantics every generated/simulated kernel is
        tested against.
        """

    @abc.abstractmethod
    def to_coo(self) -> "repro.formats.coo.COOMatrix":  # noqa: F821
        """Convert back to canonical COO (sorted row-major, no explicit zeros
        unless the format materialised them as values)."""

    @abc.abstractmethod
    def array_inventory(self) -> Dict[str, np.ndarray]:
        """Mapping of array name -> stored ndarray for footprint accounting."""

    # ------------------------------------------------------------------
    # shared behaviour
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix shape ``(nrows, ncols)``."""
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    def stored_elements(self) -> int:
        """Number of value slots actually stored, *including* padding.

        Formats that pad (DIA, ELL) override this; by default it equals
        ``nnz``.
        """
        return self.nnz

    @property
    def fill_ratio(self) -> float:
        """stored_elements / nnz — 1.0 means no padding waste."""
        nnz = self.nnz
        return float(self.stored_elements) / nnz if nnz else 1.0

    def todense(self) -> np.ndarray:
        """Materialise as a dense ndarray (small matrices / tests only)."""
        return self.to_coo().todense()

    def matmat(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Multi-vector SpMM: ``Y = A @ X`` for ``X`` of shape
        ``(ncols, k)``.

        The default loops :meth:`matvec` over columns; formats with a
        cheaper blocked path override it.  Multi-RHS products amortise
        the index traffic over ``k`` vectors — the same argument the
        paper makes for baking indices away entirely.
        """
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != self.ncols:
            raise FormatError(
                f"X must be ({self.ncols}, k), got {x.shape}"
            )
        k = x.shape[1]
        if out is None:
            out = np.zeros((self.nrows, k), dtype=np.result_type(x, np.float64))
        elif out.shape != (self.nrows, k):
            raise FormatError(f"out must be ({self.nrows}, {k})")
        for j in range(k):
            out[:, j] = self.matvec(np.ascontiguousarray(x[:, j]))
        return out

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim == 2:
            return self.matmat(x)
        return self.matvec(x)

    def nbytes(self, value_itemsize: int = 8, index_itemsize: int = 4) -> int:
        """Total bytes of the stored representation.

        ``value_itemsize`` is 8 for double precision, 4 for single; index
        arrays always use ``index_itemsize`` bytes per element.  Floating
        arrays are counted at ``value_itemsize`` regardless of the dtype
        they are held in host-side (the paper transfers them to the
        device at the benchmark precision).
        """
        total = 0
        for arr in self.array_inventory().values():
            if np.issubdtype(arr.dtype, np.floating):
                total += arr.size * value_itemsize
            else:
                total += arr.size * index_itemsize
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} shape={self.shape} nnz={self.nnz} "
            f"stored={self.stored_elements}>"
        )

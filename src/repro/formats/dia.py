"""Diagonal (DIA) format.

The format the paper sets out to improve upon.  Every occupied diagonal
is stored in full: ``data[d, i]`` holds ``A[i, i + offsets[d]]`` for
every row ``i`` (zero where the diagonal has no entry or leaves the
matrix).  All nonzeros on one diagonal therefore share a single index —
the diagonal's offset — but *idle sections* and *scatter points* force
large numbers of explicit zeros to be stored (Section II-A of the
paper), which is exactly the waste CRSD removes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseFormat,
    check_vector,
)
from repro.formats.coo import COOMatrix


class DIAMatrix(SparseFormat):
    """DIA sparse matrix.

    Parameters
    ----------
    offsets:
        Sorted distinct diagonal offsets (``col - row``; positive above
        the main diagonal).
    data:
        ``(ndiags, nrows)`` array; ``data[d, i] = A[i, i + offsets[d]]``.
        Out-of-matrix slots must be zero.
    shape:
        Matrix shape.
    """

    name = "dia"

    def __init__(self, offsets: np.ndarray, data: np.ndarray, shape: Tuple[int, int]):
        super().__init__(shape)
        offsets = np.asarray(offsets, dtype=np.int64).ravel()
        data = np.asarray(data, dtype=VALUE_DTYPE)
        if data.ndim != 2 or data.shape != (offsets.size, self.nrows):
            raise FormatError(
                f"data must be (ndiags={offsets.size}, nrows={self.nrows}), got {data.shape}"
            )
        if offsets.size:
            if np.any(np.diff(offsets) <= 0):
                raise FormatError("offsets must be strictly increasing")
            if offsets.min() <= -self.nrows or offsets.max() >= self.ncols:
                raise FormatError("diagonal offset out of matrix")
            # out-of-matrix slots must not carry values
            rows = np.arange(self.nrows)
            cols = rows[None, :] + offsets[:, None]
            outside = (cols < 0) | (cols >= self.ncols)
            if np.any(data[outside] != 0.0):
                raise FormatError("nonzero value stored outside the matrix extent")
        self.offsets = offsets.astype(INDEX_DTYPE)
        self.data = data

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "DIAMatrix":
        """Build from COO, materialising every occupied diagonal in full."""
        offsets = coo.diagonal_offsets()
        data = np.zeros((offsets.size, coo.nrows), dtype=VALUE_DTYPE)
        if coo.nnz:
            entry_offsets = coo.offsets_of_entries()
            diag_idx = np.searchsorted(offsets, entry_offsets)
            data[diag_idx, coo.rows] = coo.vals
        return cls(offsets, data, coo.shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "DIAMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def ndiags(self) -> int:
        return int(self.offsets.size)

    @property
    def stored_elements(self) -> int:
        """Full slab including padding: ndiags × nrows."""
        return int(self.data.size)

    @property
    def in_matrix_elements(self) -> int:
        """Stored slots that fall inside the matrix extent (these cost
        flops in the Bell & Garland DIA kernel; out-of-matrix slots are
        skipped by the bounds check)."""
        if not self.ndiags:
            return 0
        offs = self.offsets.astype(np.int64)
        lo = np.maximum(0, -offs)
        hi = np.minimum(self.nrows, self.ncols - offs)
        return int(np.maximum(0, hi - lo).sum())

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = check_vector(x, self.ncols)
        y = out if out is not None else np.zeros(self.nrows, dtype=np.result_type(self.data, x))
        if out is not None:
            y[:] = 0.0
        rows = np.arange(self.nrows)
        for d, off in enumerate(self.offsets.astype(np.int64)):
            lo = max(0, -off)
            hi = min(self.nrows, self.ncols - off)
            if hi <= lo:
                continue
            seg = slice(lo, hi)
            y[seg] += self.data[d, seg] * x[rows[seg] + off]
        return y

    def to_coo(self) -> COOMatrix:
        diag_idx, rows = np.nonzero(self.data)
        cols = rows + self.offsets.astype(np.int64)[diag_idx]
        return COOMatrix(rows, cols, self.data[diag_idx, rows], self.shape)

    def array_inventory(self) -> Dict[str, np.ndarray]:
        return {"offsets": self.offsets, "data": self.data}

"""Coordinate (COO) format — the canonical interchange representation.

Stores one ``(row, col, value)`` triplet per nonzero.  All other formats
convert through COO.  Triplets are kept sorted row-major (row, then
column) with duplicates summed, which makes conversions and equality
checks deterministic.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseFormat,
    check_vector,
)


class COOMatrix(SparseFormat):
    """Coordinate-format sparse matrix.

    Parameters
    ----------
    rows, cols, vals:
        Parallel arrays of equal length giving the nonzero triplets.
        They are copied, coerced, sorted row-major and deduplicated
        (duplicate coordinates are summed, as in most sparse toolkits).
    shape:
        Matrix shape ``(nrows, ncols)``.
    keep_explicit_zeros:
        When False (default) triplets whose value is exactly 0.0 are
        dropped after deduplication.
    """

    name = "coo"

    def __init__(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: Tuple[int, int],
        *,
        keep_explicit_zeros: bool = False,
    ):
        super().__init__(shape)
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        vals = np.asarray(vals, dtype=VALUE_DTYPE).ravel()
        if not (rows.shape == cols.shape == vals.shape):
            raise FormatError(
                f"triplet arrays disagree in length: {rows.size}, {cols.size}, {vals.size}"
            )
        if rows.size:
            if rows.min(initial=0) < 0 or rows.max(initial=0) >= self.nrows:
                raise FormatError("row index out of range")
            if cols.min(initial=0) < 0 or cols.max(initial=0) >= self.ncols:
                raise FormatError("column index out of range")
        rows, cols, vals = _sort_and_sum_duplicates(rows, cols, vals, self.ncols)
        if not keep_explicit_zeros and vals.size:
            keep = vals != 0.0
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        self.rows = rows.astype(INDEX_DTYPE)
        self.cols = cols.astype(INDEX_DTYPE)
        self.vals = vals

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a 2-D dense array, keeping only nonzero entries."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.ndim != 2:
            raise FormatError(f"dense array must be 2-D, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    @classmethod
    def empty(cls, shape: Tuple[int, int]) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        z = np.empty(0)
        return cls(z, z, z, shape)

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = check_vector(x, self.ncols)
        y = np.zeros(self.nrows, dtype=np.result_type(self.vals, x))
        np.add.at(y, self.rows, self.vals * x[self.cols])
        if out is not None:
            out[:] = y
            return out
        return y

    def to_coo(self) -> "COOMatrix":
        return self

    def array_inventory(self) -> Dict[str, np.ndarray]:
        return {"rows": self.rows, "cols": self.cols, "vals": self.vals}

    def todense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=VALUE_DTYPE)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    # ------------------------------------------------------------------
    # structural queries used by the analysis layer
    # ------------------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """nnz count of every row (length ``nrows``)."""
        return np.bincount(self.rows, minlength=self.nrows).astype(np.int64)

    def diagonal_offsets(self) -> np.ndarray:
        """Sorted unique offsets ``col - row`` that carry at least one nonzero."""
        return np.unique(self.cols.astype(np.int64) - self.rows.astype(np.int64))

    def offsets_of_entries(self) -> np.ndarray:
        """Per-entry diagonal offset (parallel to the triplet arrays)."""
        return self.cols.astype(np.int64) - self.rows.astype(np.int64)

    def transpose(self) -> "COOMatrix":
        """The transpose ``A^T`` (canonicalised like any COO build)."""
        return COOMatrix(self.cols, self.rows, self.vals,
                         (self.ncols, self.nrows))

    def is_symmetric(self, tol: float = 0.0) -> bool:
        """Exact (or toleranced) ``A == A^T``.

        ``tol=0.0`` demands bit-equal stored values — the precondition
        the symmetric CRSD carrier needs for bit-identical serving.
        """
        if self.nrows != self.ncols:
            return False
        return self.transpose().equals(self, tol=tol)

    def equals(self, other: "COOMatrix", tol: float = 0.0) -> bool:
        """Exact (or toleranced) structural + numerical equality."""
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        same_struct = np.array_equal(self.rows, other.rows) and np.array_equal(
            self.cols, other.cols
        )
        if not same_struct:
            return False
        if tol == 0.0:
            return np.array_equal(self.vals, other.vals)
        return bool(np.allclose(self.vals, other.vals, rtol=0.0, atol=tol))


def _sort_and_sum_duplicates(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray, ncols: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort triplets row-major and sum duplicate coordinates."""
    if rows.size == 0:
        return rows, cols, vals
    keys = rows * np.int64(ncols) + cols
    order = np.argsort(keys, kind="stable")
    keys, rows, cols, vals = keys[order], rows[order], cols[order], vals[order]
    unique_mask = np.empty(keys.size, dtype=bool)
    unique_mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=unique_mask[1:])
    if unique_mask.all():
        return rows, cols, vals
    group_ids = np.cumsum(unique_mask) - 1
    summed = np.zeros(group_ids[-1] + 1, dtype=vals.dtype)
    np.add.at(summed, group_ids, vals)
    return rows[unique_mask], cols[unique_mask], summed

"""Delta-compressed CSR (the related work's index compression).

Section V cites Willcock & Lumsdaine's DCSR/RPCSR and Kourtis et al.'s
index/value compression: SpMV is bandwidth-bound, so shrinking the
index stream is itself a speedup.  This module implements the
row-unit variant (Kourtis' CSR-DU):

- column indices are stored as **deltas** between consecutive nonzeros
  of a row; each row carries a 1-byte header choosing the delta width
  (1, 2 or 4 bytes) for the whole row, a 4-byte absolute first column,
  and the packed deltas;
- optionally (CSR-VI) the values are de-duplicated through an indirect
  value table when few distinct values exist.

Decoding is row-unit-wise and vectorised; the format's purpose in this
library is its *footprint*: ``array_inventory`` exposes the encoded
byte stream, so the footprint accounting and the GPU cost model see
the compression the papers exploit.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseFormat,
    check_vector,
)
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

_WIDTH_DTYPE = {1: np.uint8, 2: np.uint16, 4: np.uint32}


class DeltaCSRMatrix(SparseFormat):
    """CSR with per-row delta-compressed column indices.

    Build with :meth:`from_coo`/:meth:`from_csr`; the constructor takes
    the encoded representation directly.
    """

    name = "dcsr"

    def __init__(
        self,
        indptr: np.ndarray,
        unit_offsets: np.ndarray,
        stream: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
        value_table: Optional[np.ndarray] = None,
    ):
        super().__init__(shape)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.unit_offsets = np.asarray(unit_offsets, dtype=np.int64)
        self.stream = np.asarray(stream, dtype=np.uint8)
        self.data = np.asarray(data)
        self.value_table = (
            None if value_table is None else np.asarray(value_table, dtype=VALUE_DTYPE)
        )
        if self.indptr.size != self.nrows + 1:
            raise FormatError("indptr must have nrows+1 entries")
        if self.unit_offsets.size != self.nrows + 1:
            raise FormatError("unit_offsets must have nrows+1 entries")
        if self.value_table is None:
            if self.data.dtype != VALUE_DTYPE:
                raise FormatError("data must be float64 when no value table is used")
        else:
            if not np.issubdtype(self.data.dtype, np.integer):
                raise FormatError("data must be integer ids with a value table")
        self._decoded: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls, csr: CSRMatrix, compress_values: bool = False,
        value_table_max: int = 4096,
    ) -> "DeltaCSRMatrix":
        """Encode a CSR matrix.

        ``compress_values`` enables the CSR-VI value indirection when
        the matrix has at most ``value_table_max`` distinct values
        (common for stencil/FD matrices with constant coefficients).
        """
        nrows = csr.nrows
        indices = csr.indices.astype(np.int64)
        indptr = csr.indptr.astype(np.int64)
        chunks = []
        unit_offsets = np.zeros(nrows + 1, dtype=np.int64)
        pos = 0
        for i in range(nrows):
            lo, hi = indptr[i], indptr[i + 1]
            cols = indices[lo:hi]
            if cols.size == 0:
                unit_offsets[i + 1] = pos
                continue
            deltas = np.diff(cols)
            if deltas.size and deltas.min() <= 0:
                raise FormatError(f"row {i} columns not strictly increasing")
            width = 1
            if deltas.size:
                mx = int(deltas.max())
                width = 1 if mx < 256 else (2 if mx < 65536 else 4)
            header = np.array([width], dtype=np.uint8)
            first = np.array([cols[0]], dtype="<u4").view(np.uint8)
            body = deltas.astype(_WIDTH_DTYPE[width]).astype(
                {1: "<u1", 2: "<u2", 4: "<u4"}[width]
            ).view(np.uint8)
            chunk = np.concatenate([header, first, body])
            chunks.append(chunk)
            pos += chunk.size
            unit_offsets[i + 1] = pos
        stream = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint8)

        data = csr.data
        table = None
        if compress_values:
            uniq, inv = np.unique(csr.data, return_inverse=True)
            if uniq.size <= value_table_max and uniq.size < csr.nnz:
                table = uniq
                dt = np.uint16 if uniq.size < 65536 else np.uint32
                data = inv.astype(dt)
        return cls(indptr, unit_offsets, stream, data, csr.shape, table)

    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "DeltaCSRMatrix":
        return cls.from_csr(CSRMatrix.from_coo(coo), **kwargs)

    @classmethod
    def from_dense(cls, dense: np.ndarray, **kwargs) -> "DeltaCSRMatrix":
        return cls.from_csr(CSRMatrix.from_dense(dense), **kwargs)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode_indices(self) -> np.ndarray:
        """Reconstruct the full column-index array (cached)."""
        if self._decoded is not None:
            return self._decoded
        out = np.empty(self.nnz, dtype=np.int64)
        for i in range(self.nrows):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            if hi == lo:
                continue
            u0 = self.unit_offsets[i]
            width = int(self.stream[u0])
            first = int(self.stream[u0 + 1 : u0 + 5].view("<u4")[0])
            nd = int(hi - lo - 1)
            body = self.stream[u0 + 5 : u0 + 5 + nd * width]
            deltas = body.view({1: "<u1", 2: "<u2", 4: "<u4"}[width]).astype(np.int64)
            cols = np.empty(nd + 1, dtype=np.int64)
            cols[0] = first
            np.cumsum(deltas, out=cols[1:]) if nd else None
            if nd:
                cols[1:] += first
            out[lo:hi] = cols
        self._decoded = out
        return out

    def values(self) -> np.ndarray:
        """Materialised value array (through the table if present)."""
        if self.value_table is None:
            return self.data
        return self.value_table[self.data]

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = check_vector(x, self.ncols)
        csr = CSRMatrix(self.indptr, self.decode_indices(), self.values(), self.shape)
        return csr.matvec(x, out=out)

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64),
                         np.diff(self.indptr))
        return COOMatrix(rows, self.decode_indices(), self.values(), self.shape)

    def array_inventory(self) -> Dict[str, np.ndarray]:
        # unit_offsets is a host-side random-access aid (a sequential
        # CSR-DU SpMV walks the stream), so — like ELL's occupancy mask
        # — it is not part of the transferred representation.
        inv = {
            "indptr": self.indptr.astype(INDEX_DTYPE),
            "stream": self.stream,
            "data": self.data,
        }
        if self.value_table is not None:
            inv["value_table"] = self.value_table
        return inv

    def nbytes(self, value_itemsize: int = 8, index_itemsize: int = 4) -> int:
        """Exact encoded footprint (the stream is bytes, not indices)."""
        total = self.stream.size  # 1 byte per element
        total += self.indptr.size * index_itemsize
        if self.value_table is None:
            total += self.data.size * value_itemsize
        else:
            total += self.data.size * self.data.dtype.itemsize
            total += self.value_table.size * value_itemsize
        return total

    @property
    def compression_ratio(self) -> float:
        """Plain CSR index bytes / compressed index-stream bytes."""
        plain = self.nnz * 4
        return plain / self.stream.size if self.stream.size else 1.0

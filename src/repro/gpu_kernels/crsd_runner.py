"""CRSD SpMV runner: generated codelets on the simulated device.

Only the value arrays travel to the device — ``crsd_dia_val`` plus the
three scatter arrays; every index is baked into the generated kernel
(that is the paper's memory-pressure reduction, measurable here as the
absence of index traffic in the trace).  The diagonal kernel launches
one work-group per row segment with ``local_size = mrows``; the scatter
ELL kernel runs second and overwrites its rows.  Both launches share
one L2 :class:`~repro.ocl.memory.SegmentCache` so the trace models the
x-vector residency the scatter kernel inherits from the diagonal pass.

The execution engine is selected by ``REPRO_EXECUTOR`` (see
:func:`~repro.ocl.executor.executor_mode`): the default segment-batched
engine runs each kernel as one vectorised invocation; the per-group
reference engine (``REPRO_EXECUTOR=pergroup``) iterates work-groups
sequentially and serves as the correctness oracle; the fused engine
(``REPRO_EXECUTOR=fused``) executes the whole SpMV as a few
whole-matrix expressions with a trace synthesized from the static
predictor — entered only when the analyzer certifies the plan (see
:mod:`repro.gpu_kernels.fused`), silently falling back to ``batched``
otherwise.  A fused run can additionally be differentially verified
against the batched oracle (``REPRO_FUSED_VERIFY=first`` or
``always``); any mismatch permanently demotes the runner to
``batched`` and files an :class:`IncidentReport` on the served run.
"""

from __future__ import annotations

import dataclasses
import os
import warnings

import numpy as np

from repro.codegen.plan import build_plan
from repro.codegen.python_codelet import generate_python_kernel
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.gpu_kernels.fused import FUSED_KERNEL_NAME, build_fused_state
from repro.obs import recorder as _obs
from repro.obs.recorder import maybe_span
from repro.ocl.executor import (
    executor_mode,
    launch,
    launch_batched,
    make_launch_cache,
)
from repro.resilience import faults as _flt

#: environment variable selecting fused differential verification:
#: ``off`` (default), ``first`` (verify the first fused run of each
#: runner against the batched oracle), ``always`` (verify every run)
FUSED_VERIFY_ENV = "REPRO_FUSED_VERIFY"

#: ladder-style rung name fused incidents report as requested
FUSED_RUNG = "crsd-fused"


def fused_verify_mode() -> str:
    """The selected fused verification policy (see
    :data:`FUSED_VERIFY_ENV`)."""
    mode = os.environ.get(FUSED_VERIFY_ENV, "off").strip().lower()
    if mode in ("", "0", "off", "no", "none"):
        return "off"
    if mode not in ("first", "always"):
        raise ValueError(
            f"{FUSED_VERIFY_ENV}={mode!r} is not a known verification "
            "policy; expected off, first or always")
    return mode


class CrsdSpMV(GPUSpMV):
    """Generated-codelet CRSD SpMV runner.

    Parameters
    ----------
    matrix:
        The CRSD-format matrix.
    use_local_memory:
        Stage AD-group x windows through local memory (default; turn
        off for ablation A1).
    strict:
        Run the full static analyzer over the generated plan and both
        renderings before compiling; raises
        :class:`~repro.analyze.report.KernelAnalysisError` if any
        checker finds a violation.
    template:
        Optional same-pattern donor runner (matched by the serve plan
        cache via :func:`repro.core.serialize.pattern_fingerprint`).
        The plan, the compiled codelets and — when device and precision
        also match — the fused certificate/kernel/trace are pure
        functions of the sparsity pattern, so they are adopted instead
        of rebuilt; only the value buffers are per matrix.
    """

    name = "crsd"

    def __init__(self, matrix: CRSDMatrix, use_local_memory: bool = True,
                 strict: bool = False, template: "CrsdSpMV" = None,
                 **kwargs):
        kwargs.setdefault("local_size", matrix.mrows)
        super().__init__(**kwargs)
        self.matrix = matrix
        if template is not None and self._template_compatible(
                template, 1, bool(use_local_memory)):
            self.plan = template.plan
            self.kernel = template.kernel
        else:
            template = None
            self.plan = build_plan(matrix,
                                   use_local_memory=use_local_memory)
            self.kernel = generate_python_kernel(self.plan, strict=strict)
        self._init_fused(template)

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    @property
    def opencl_source(self) -> str:
        """The OpenCL C rendering of the same kernel (for inspection)."""
        from repro.codegen.opencl_source import generate_opencl_source

        return generate_opencl_source(self.plan, self.precision)

    def _result_elems(self) -> int:
        """Elements of the device-side result buffer (``nrows`` for
        SpMV; the SpMM subclass widens it to ``nrows * nvec``)."""
        return self.nrows

    def _prepare(self) -> None:
        self._dia_val = self.context.alloc(
            self.matrix.dia_val.astype(self.dtype), "crsd_dia_val"
        )
        # scatter arrays column-major so the unrolled loads coalesce
        self._scol = self.context.alloc(
            np.ascontiguousarray(self.matrix.scatter_colval.T).ravel(), "scatter_colval"
        )
        self._sval = self.context.alloc(
            np.ascontiguousarray(self.matrix.scatter_val.T).astype(self.dtype).ravel(),
            "scatter_val",
        )
        self._srow = self.context.alloc(self.matrix.scatter_rowno, "scatter_rowno")
        self._y = self.context.alloc_zeros(self._result_elems(), self.dtype, "y")

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            ybuf = self._y
            ybuf.data[:] = 0
            mode = executor_mode()
            if mode == "fused":
                run = self._execute_fused(xbuf, ybuf, trace)
                if run is not None:
                    return run
                # not certified / demoted: fall back to batched
                ybuf.data[:] = 0
                mode = "batched"
            run = self._execute_launches(xbuf, ybuf, trace,
                                         batched=(mode == "batched"))
            if self._fused_incident_pending is not None:
                run.resilience = self._fused_incident_pending
                self._fused_incident_pending = None
            return run
        finally:
            self.context.free(xbuf)

    # ------------------------------------------------------------------
    # dynamic engines (batched grid / per-group oracle)
    # ------------------------------------------------------------------
    def _execute_launches(self, xbuf, ybuf, trace: bool,
                          batched: bool) -> SpMVRun:
        if batched:
            do_launch = launch_batched
            dia_kernel = self.kernel.dia_kernel_batched
            scatter_kernel = self.kernel.scatter_kernel_batched
        else:
            do_launch = launch
            dia_kernel = self.kernel.dia_kernel
            scatter_kernel = self.kernel.scatter_kernel
        # one L2 cache for both kernels of this SpMV: the scatter
        # pass reuses x lines the diagonal pass brought in
        cache = make_launch_cache(self.device, trace)
        tr = do_launch(
            dia_kernel,
            self.plan.num_groups,
            self.plan.local_size,
            (self._dia_val, xbuf, ybuf),
            self.device,
            trace,
            cache,
        )
        if scatter_kernel is not None:
            groups = -(-self.plan.scatter.num_rows // self.plan.local_size)
            tr2 = do_launch(
                scatter_kernel,
                groups,
                self.plan.local_size,
                (self._scol, self._sval, self._srow, xbuf, ybuf),
                self.device,
                trace,
                cache,
            )
            tr.merge(tr2)
        return SpMVRun(y=ybuf.to_host().copy(), trace=tr)

    # ------------------------------------------------------------------
    # fused engine
    # ------------------------------------------------------------------
    def _init_fused(self, template) -> None:
        self._fused_template = template
        self._fused_state_obj = None   # None = not built, False = declined
        self._fused_demoted = False
        self._fused_verified = False
        self._fused_incident_pending = None
        #: IncidentReports filed by fused demotions, newest last
        self.fused_incidents = []

    def _template_compatible(self, template, nvec: int,
                             use_local_memory=None) -> bool:
        """Cheap sanity guard — callers passing a template are expected
        to have matched the *pattern fingerprint* already."""
        m = self.matrix
        return (isinstance(template, CrsdSpMV)
                and template.plan.nvec == nvec
                and (use_local_memory is None
                     or template.plan.use_local_memory
                     == (use_local_memory and nvec == 1))
                and template.plan.nrows == m.nrows
                and template.plan.ncols == m.ncols
                and template.plan.mrows == m.mrows
                and template.plan.scatter.num_rows == m.num_scatter_rows
                and template.matrix.dia_val.size == m.dia_val.size)

    def _fused_state(self):
        """The runner's fused execution state, built (or adopted from
        the template) on first use; ``None`` when declined/demoted."""
        if self._fused_demoted:
            return None
        if self._fused_state_obj is None:
            self._fused_state_obj = self._build_fused_state()
        return self._fused_state_obj or None

    def _build_fused_state(self):
        tpl = self._fused_template
        if (tpl is not None and tpl._fused_state_obj is not None
                and tpl.precision == self.precision
                and tpl.device == self.device):
            return tpl._fused_state_obj
        try:
            if _flt.ACTIVE is not None:
                _flt.ACTIVE.on_phase(f"{self.name}.fused_certify")
            state, cert = build_fused_state(
                self.plan, self.device, self.precision,
                scatter_colval=self.matrix.scatter_colval,
                scatter_rowno=self.matrix.scatter_rowno)
        except Exception as exc:
            # a *crashed* prover is an incident, not a clean decline:
            # demote permanently and surface the report on the next run
            self._demote("fault", error=exc,
                         message="fused certification raised; "
                                 "demoted to batched")
            return False
        if state is None:
            # cleanly not certifiable: silent fallback by design
            sess = _obs.ACTIVE
            if sess is not None:
                sess.record_event(
                    "fused.uncertified", category="resilience",
                    kernel=self.name, reasons=list(cert.reasons))
            return False
        return state

    def _demote(self, outcome: str, error=None, message: str = "") -> None:
        """Permanently demote this runner to the batched engine and
        file the IncidentReport (attached to the next served run)."""
        from repro.resilience.engine import AttemptRecord, IncidentReport

        self._fused_demoted = True
        incident = IncidentReport(
            requested=FUSED_RUNG, precision=self.precision,
            served_rung=self.name,
            attempts=[
                AttemptRecord(
                    rung=FUSED_RUNG, attempt=1, outcome=outcome,
                    error=type(error).__name__ if error is not None
                    else None,
                    message=message),
                AttemptRecord(rung=self.name, attempt=1,
                              outcome="served"),
            ],
            verified=(outcome == "verify-failed") or None,
        )
        self.fused_incidents.append(incident)
        self._fused_incident_pending = incident
        sess = _obs.ACTIVE
        if sess is not None:
            sess.record_event("fused.demoted", category="resilience",
                              kernel=self.name, outcome=outcome,
                              message=message)

    def _execute_fused(self, xbuf, ybuf, trace: bool):
        """One fused run, or ``None`` to fall back to batched."""
        state = self._fused_state()
        if state is None:
            return None
        verify = fused_verify_mode()
        need_verify = verify == "always" or (verify == "first"
                                             and not self._fused_verified)
        sess = _obs.ACTIVE
        t0 = _obs.perf_counter() if sess is not None else 0.0
        if _flt.ACTIVE is not None:
            _flt.ACTIVE.on_launch(FUSED_KERNEL_NAME)
        state.kernel(self._dia_val.data, self._sval.data,
                     xbuf.data, ybuf.data)
        if _flt.ACTIVE is not None:
            _flt.ACTIVE.on_launch_exit(
                FUSED_KERNEL_NAME,
                (self._dia_val, self._sval, xbuf, ybuf))
        tr = state.run_trace(trace)
        if sess is not None:
            sess.record_kernel(
                FUSED_KERNEL_NAME, work_groups=state.work_groups,
                local_size=self.plan.local_size, executor="fused",
                wall_s=_obs.perf_counter() - t0,
                trace=tr if trace else None)
        if need_verify:
            mismatch = self._fused_mismatch(state, xbuf, ybuf, trace)
            if mismatch is not None:
                return mismatch
            self._fused_verified = True
        return SpMVRun(y=ybuf.to_host().copy(), trace=tr)

    def _fused_mismatch(self, state, xbuf, ybuf, trace: bool):
        """Differentially verify the fused result in ``ybuf`` against
        the batched oracle.  Returns ``None`` on agreement (``ybuf``
        restored to the — bit-identical — fused result) or the oracle's
        run with the demotion incident attached."""
        y_fused = ybuf.data.copy()
        tr_fused = state.run_trace(True)
        ybuf.data[:] = 0
        oracle = self._execute_launches(xbuf, ybuf, True, batched=True)
        if (np.array_equal(y_fused, oracle.y)
                and dataclasses.asdict(tr_fused)
                == dataclasses.asdict(oracle.trace)):
            ybuf.data[:] = y_fused
            return None
        self._demote("verify-failed",
                     message="fused y/trace diverged from the batched "
                             "oracle; demoted to batched")
        oracle.resilience = self._fused_incident_pending
        self._fused_incident_pending = None
        if not trace:
            oracle = SpMVRun(y=oracle.y,
                             trace=_minimal_trace(oracle.trace),
                             resilience=oracle.resilience)
        return oracle


def _minimal_trace(full):
    """An untraced-run view of a full trace (launch geometry only)."""
    from repro.ocl.trace import KernelTrace

    return KernelTrace(work_groups=full.work_groups,
                       wavefronts=full.wavefronts)


class CrsdSpMM(CrsdSpMV):
    """Generated multi-vector CRSD SpMM runner.

    The codelets bake ``nvec`` in and load each slab value once for all
    right-hand sides.  ``run(X)`` takes ``X`` of shape ``(ncols, nvec)``
    and returns ``y`` of shape ``(nrows, nvec)``; device-side both are
    column-major flat buffers with the strides in the kernel text.

    With ``nvec > 1`` the plan always disables AD-group local-memory
    staging (see :class:`~repro.codegen.plan.KernelPlan`): the L2
    already holds the shared x window across the columns in flight, and
    per-column tiles would exhaust local memory.  Passing
    ``use_local_memory=True`` is therefore a no-op and warns.
    """

    name = "crsd_spmm"

    def __init__(self, matrix: CRSDMatrix, nvec: int,
                 use_local_memory: bool | None = None,
                 strict: bool = False, template: "CrsdSpMM" = None,
                 **kwargs):
        kwargs.setdefault("local_size", matrix.mrows)
        GPUSpMV.__init__(self, **kwargs)  # skip CrsdSpMV.__init__
        self.matrix = matrix
        self.nvec = int(nvec)
        if use_local_memory and self.nvec > 1:
            warnings.warn(
                "CrsdSpMM ignores use_local_memory=True: the multi-vector "
                "plan always uses direct x loads (nvec > 1 disables "
                "AD-group local-memory staging)",
                stacklevel=2,
            )
        if template is not None and self._template_compatible(
                template, self.nvec):
            self.plan = template.plan
            self.kernel = template.kernel
        else:
            template = None
            self.plan = build_plan(
                matrix,
                # None = inherit the default (build_plan itself turns the
                # staging off whenever nvec > 1)
                use_local_memory=True if use_local_memory is None else use_local_memory,
                nvec=self.nvec,
            )
            self.kernel = generate_python_kernel(self.plan, strict=strict)
        self._init_fused(template)

    def run(self, x: np.ndarray, trace: bool = True) -> SpMVRun:
        """Compute ``Y = A @ X`` for ``X`` of shape ``(ncols, nvec)``."""
        from repro.validation import validate_batch

        self.prepare()
        x = validate_batch(x, self.ncols, self.nvec).astype(
            self.dtype, copy=False)
        flat = np.ascontiguousarray(x.T).ravel()  # column-major device layout
        with maybe_span(f"{self.name}.spmm", "op", kernel=self.name,
                        precision=self.precision, nvec=self.nvec):
            run = self._execute(flat, trace)
        y = run.y.reshape(self.nvec, self.nrows).T.copy()
        return SpMVRun(y=y, trace=run.trace, resilience=run.resilience)

    def _result_elems(self) -> int:
        # one flat column-major buffer holding all nvec result columns
        return self.nrows * self.nvec

"""CRSD SpMV runner: generated codelets on the simulated device.

Only the value arrays travel to the device — ``crsd_dia_val`` plus the
three scatter arrays; every index is baked into the generated kernel
(that is the paper's memory-pressure reduction, measurable here as the
absence of index traffic in the trace).  The diagonal kernel launches
one work-group per row segment with ``local_size = mrows``; the scatter
ELL kernel runs second and overwrites its rows.  Both launches share
one L2 :class:`~repro.ocl.memory.SegmentCache` so the trace models the
x-vector residency the scatter kernel inherits from the diagonal pass.

The execution engine is selected by ``REPRO_EXECUTOR`` (see
:func:`~repro.ocl.executor.executor_mode`): the default segment-batched
engine runs each kernel as one vectorised invocation; the per-group
reference engine (``REPRO_EXECUTOR=pergroup``) iterates work-groups
sequentially and serves as the correctness oracle.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.codegen.plan import build_plan
from repro.codegen.python_codelet import generate_python_kernel
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.obs.recorder import maybe_span
from repro.ocl.executor import (
    executor_mode,
    launch,
    launch_batched,
    make_launch_cache,
)


class CrsdSpMV(GPUSpMV):
    """Generated-codelet CRSD SpMV runner.

    Parameters
    ----------
    matrix:
        The CRSD-format matrix.
    use_local_memory:
        Stage AD-group x windows through local memory (default; turn
        off for ablation A1).
    strict:
        Run the full static analyzer over the generated plan and both
        renderings before compiling; raises
        :class:`~repro.analyze.report.KernelAnalysisError` if any
        checker finds a violation.
    """

    name = "crsd"

    def __init__(self, matrix: CRSDMatrix, use_local_memory: bool = True,
                 strict: bool = False, **kwargs):
        kwargs.setdefault("local_size", matrix.mrows)
        super().__init__(**kwargs)
        self.matrix = matrix
        self.plan = build_plan(matrix, use_local_memory=use_local_memory)
        self.kernel = generate_python_kernel(self.plan, strict=strict)

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    @property
    def opencl_source(self) -> str:
        """The OpenCL C rendering of the same kernel (for inspection)."""
        from repro.codegen.opencl_source import generate_opencl_source

        return generate_opencl_source(self.plan, self.precision)

    def _result_elems(self) -> int:
        """Elements of the device-side result buffer (``nrows`` for
        SpMV; the SpMM subclass widens it to ``nrows * nvec``)."""
        return self.nrows

    def _prepare(self) -> None:
        self._dia_val = self.context.alloc(
            self.matrix.dia_val.astype(self.dtype), "crsd_dia_val"
        )
        # scatter arrays column-major so the unrolled loads coalesce
        self._scol = self.context.alloc(
            np.ascontiguousarray(self.matrix.scatter_colval.T).ravel(), "scatter_colval"
        )
        self._sval = self.context.alloc(
            np.ascontiguousarray(self.matrix.scatter_val.T).astype(self.dtype).ravel(),
            "scatter_val",
        )
        self._srow = self.context.alloc(self.matrix.scatter_rowno, "scatter_rowno")
        self._y = self.context.alloc_zeros(self._result_elems(), self.dtype, "y")

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            ybuf = self._y
            ybuf.data[:] = 0
            if executor_mode() == "batched":
                do_launch = launch_batched
                dia_kernel = self.kernel.dia_kernel_batched
                scatter_kernel = self.kernel.scatter_kernel_batched
            else:
                do_launch = launch
                dia_kernel = self.kernel.dia_kernel
                scatter_kernel = self.kernel.scatter_kernel
            # one L2 cache for both kernels of this SpMV: the scatter
            # pass reuses x lines the diagonal pass brought in
            cache = make_launch_cache(self.device, trace)
            tr = do_launch(
                dia_kernel,
                self.plan.num_groups,
                self.plan.local_size,
                (self._dia_val, xbuf, ybuf),
                self.device,
                trace,
                cache,
            )
            if scatter_kernel is not None:
                groups = -(-self.plan.scatter.num_rows // self.plan.local_size)
                tr2 = do_launch(
                    scatter_kernel,
                    groups,
                    self.plan.local_size,
                    (self._scol, self._sval, self._srow, xbuf, ybuf),
                    self.device,
                    trace,
                    cache,
                )
                tr.merge(tr2)
            return SpMVRun(y=ybuf.to_host().copy(), trace=tr)
        finally:
            self.context.free(xbuf)


class CrsdSpMM(CrsdSpMV):
    """Generated multi-vector CRSD SpMM runner.

    The codelets bake ``nvec`` in and load each slab value once for all
    right-hand sides.  ``run(X)`` takes ``X`` of shape ``(ncols, nvec)``
    and returns ``y`` of shape ``(nrows, nvec)``; device-side both are
    column-major flat buffers with the strides in the kernel text.

    With ``nvec > 1`` the plan always disables AD-group local-memory
    staging (see :class:`~repro.codegen.plan.KernelPlan`): the L2
    already holds the shared x window across the columns in flight, and
    per-column tiles would exhaust local memory.  Passing
    ``use_local_memory=True`` is therefore a no-op and warns.
    """

    name = "crsd_spmm"

    def __init__(self, matrix: CRSDMatrix, nvec: int,
                 use_local_memory: bool | None = None,
                 strict: bool = False, **kwargs):
        kwargs.setdefault("local_size", matrix.mrows)
        GPUSpMV.__init__(self, **kwargs)  # skip CrsdSpMV.__init__
        self.matrix = matrix
        self.nvec = int(nvec)
        if use_local_memory and self.nvec > 1:
            warnings.warn(
                "CrsdSpMM ignores use_local_memory=True: the multi-vector "
                "plan always uses direct x loads (nvec > 1 disables "
                "AD-group local-memory staging)",
                stacklevel=2,
            )
        self.plan = build_plan(
            matrix,
            # None = inherit the default (build_plan itself turns the
            # staging off whenever nvec > 1)
            use_local_memory=True if use_local_memory is None else use_local_memory,
            nvec=self.nvec,
        )
        self.kernel = generate_python_kernel(self.plan, strict=strict)

    def run(self, x: np.ndarray, trace: bool = True) -> SpMVRun:
        """Compute ``Y = A @ X`` for ``X`` of shape ``(ncols, nvec)``."""
        from repro.validation import validate_batch

        self.prepare()
        x = validate_batch(x, self.ncols, self.nvec).astype(
            self.dtype, copy=False)
        flat = np.ascontiguousarray(x.T).ravel()  # column-major device layout
        with maybe_span(f"{self.name}.spmm", "op", kernel=self.name,
                        precision=self.precision, nvec=self.nvec):
            run = self._execute(flat, trace)
        y = run.y.reshape(self.nvec, self.nrows).T.copy()
        return SpMVRun(y=y, trace=run.trace)

    def _result_elems(self) -> int:
        # one flat column-major buffer holding all nvec result columns
        return self.nrows * self.nvec

"""CRSD SpMV runner: generated codelets on the simulated device.

Only the value arrays travel to the device — ``crsd_dia_val`` plus the
three scatter arrays; every index is baked into the generated kernel
(that is the paper's memory-pressure reduction, measurable here as the
absence of index traffic in the trace).  The diagonal kernel launches
one work-group per row segment with ``local_size = mrows``; the scatter
ELL kernel runs second and overwrites its rows.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.plan import build_plan
from repro.codegen.python_codelet import generate_python_kernel
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.ocl.executor import launch


class CrsdSpMV(GPUSpMV):
    """Generated-codelet CRSD SpMV runner.

    Parameters
    ----------
    matrix:
        The CRSD-format matrix.
    use_local_memory:
        Stage AD-group x windows through local memory (default; turn
        off for ablation A1).
    """

    name = "crsd"

    def __init__(self, matrix: CRSDMatrix, use_local_memory: bool = True, **kwargs):
        kwargs.setdefault("local_size", matrix.mrows)
        super().__init__(**kwargs)
        self.matrix = matrix
        self.plan = build_plan(matrix, use_local_memory=use_local_memory)
        self.kernel = generate_python_kernel(self.plan)

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    @property
    def opencl_source(self) -> str:
        """The OpenCL C rendering of the same kernel (for inspection)."""
        from repro.codegen.opencl_source import generate_opencl_source

        return generate_opencl_source(self.plan, self.precision)

    def _prepare(self) -> None:
        self._dia_val = self.context.alloc(
            self.matrix.dia_val.astype(self.dtype), "crsd_dia_val"
        )
        # scatter arrays column-major so the unrolled loads coalesce
        self._scol = self.context.alloc(
            np.ascontiguousarray(self.matrix.scatter_colval.T).ravel(), "scatter_colval"
        )
        self._sval = self.context.alloc(
            np.ascontiguousarray(self.matrix.scatter_val.T).astype(self.dtype).ravel(),
            "scatter_val",
        )
        self._srow = self.context.alloc(self.matrix.scatter_rowno, "scatter_rowno")
        self._y = self.context.alloc_zeros(self.nrows, self.dtype, "y")

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            ybuf = self._y
            ybuf.data[:] = 0
            tr = launch(
                self.kernel.dia_kernel,
                self.plan.num_groups,
                self.plan.local_size,
                (self._dia_val, xbuf, ybuf),
                self.device,
                trace,
            )
            if self.kernel.scatter_kernel is not None:
                groups = -(-self.plan.scatter.num_rows // self.plan.local_size)
                tr2 = launch(
                    self.kernel.scatter_kernel,
                    groups,
                    self.plan.local_size,
                    (self._scol, self._sval, self._srow, xbuf, ybuf),
                    self.device,
                    trace,
                )
                tr.merge(tr2)
            return SpMVRun(y=ybuf.to_host().copy(), trace=tr)
        finally:
            self.context.free(xbuf)


class CrsdSpMM(CrsdSpMV):
    """Generated multi-vector CRSD SpMM runner.

    The codelets bake ``nvec`` in and load each slab value once for all
    right-hand sides.  ``run(X)`` takes ``X`` of shape ``(ncols, nvec)``
    and returns ``y`` of shape ``(nrows, nvec)``; device-side both are
    column-major flat buffers with the strides in the kernel text.
    """

    name = "crsd_spmm"

    def __init__(self, matrix: CRSDMatrix, nvec: int, **kwargs):
        kwargs.setdefault("local_size", matrix.mrows)
        GPUSpMV.__init__(self, **kwargs)  # skip CrsdSpMV.__init__
        self.matrix = matrix
        self.nvec = int(nvec)
        self.plan = build_plan(matrix, nvec=self.nvec)
        self.kernel = generate_python_kernel(self.plan)

    def run(self, x: np.ndarray, trace: bool = True) -> SpMVRun:
        """Compute ``Y = A @ X`` for ``X`` of shape ``(ncols, nvec)``."""
        self.prepare()
        x = np.asarray(x, dtype=self.dtype)
        if x.shape != (self.ncols, self.nvec):
            raise ValueError(
                f"X must be ({self.ncols}, {self.nvec}), got {x.shape}"
            )
        flat = np.ascontiguousarray(x.T).ravel()  # column-major device layout
        run = self._execute(flat, trace)
        y = run.y.reshape(self.nvec, self.nrows).T.copy()
        return SpMVRun(y=y, trace=run.trace)

    def _prepare(self) -> None:
        super()._prepare()
        # replace y with an nvec-wide flat buffer
        self.context.free(self._y)
        self._y = self.context.alloc_zeros(
            self.nrows * self.nvec, self.dtype, "y_multi"
        )

"""Bell & Garland ELL kernel: one work-item per row.

Device arrays are column-major — all rows' k-th entry contiguous
(``data[k * nrows + row]``) — so value and index loads coalesce
perfectly.  Padded lanes multiply a stored zero, so the cost again
scales with the padded width K rather than nnz.
"""

from __future__ import annotations

import numpy as np

from repro.formats.ell import ELLMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.ocl.executor import executor_mode, launch, launch_batched


class EllSpMV(GPUSpMV):
    """ELL SpMV runner (Bell & Garland layout)."""

    name = "ell"

    def __init__(self, matrix: ELLMatrix, **kwargs):
        super().__init__(**kwargs)
        self.matrix = matrix

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    def _prepare(self) -> None:
        idx_cm, data_cm = self.matrix.column_major_view()
        self._indices = self.context.alloc(
            np.ascontiguousarray(idx_cm).ravel(), "ell_indices"
        )
        self._data = self.context.alloc(
            np.ascontiguousarray(data_cm).astype(self.dtype).ravel(), "ell_data"
        )
        self._y = self.context.alloc_zeros(self.nrows, self.dtype, "y")

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            nrows = self.nrows
            width = self.matrix.width
            local_size = self.local_size
            indices, data, ybuf = self._indices, self._data, self._y

            # shape-generic over both engines (see dia.py)
            def kernel(ctx, idxb, datab, xb, yb):
                rows = ctx.group_id * local_size + ctx.lid
                in_rows = rows < nrows
                acc = np.zeros(rows.shape, dtype=x.dtype)
                safe_rows = np.clip(rows, 0, nrows - 1)
                for k in range(width):
                    v = ctx.gload(datab, k * nrows + safe_rows, mask=in_rows)
                    col = ctx.gload(idxb, k * nrows + safe_rows, mask=in_rows)
                    # B&G compute unconditionally; padded slots hold v == 0
                    xv = ctx.gload(xb, col, mask=in_rows)
                    acc += v * xv
                    ctx.flops(2 * int(in_rows.sum()))
                ctx.gstore(yb, safe_rows, acc, mask=in_rows)

            # no fused path for ELL: anything but the per-group oracle
            # runs through the batched engine
            do_launch = launch if executor_mode() == "pergroup" else launch_batched
            tr = do_launch(kernel, self.groups_for_rows(nrows), local_size,
                           (indices, data, xbuf, ybuf), self.device, trace)
            return SpMVRun(y=ybuf.to_host().copy(), trace=tr)
        finally:
            self.context.free(xbuf)

"""COO kernel (used standalone and as the HYB tail).

Bell & Garland use a segmented-reduction COO kernel; its performance
character — fully coalesced streaming of the triplet arrays plus a
row-boundary fix-up — is modelled here with one work-item per entry
and an atomic accumulation into ``y``.  For the tiny COO tails HYB
produces on this suite (0.2%–2.1% of nnz) the difference is
negligible, and the atomic read-modify-write traffic is charged
explicitly by the trace.
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.ocl.executor import launch


class CooSpMV(GPUSpMV):
    """COO SpMV runner: one work-item per nonzero, atomic adds into y."""

    name = "coo"

    def __init__(self, matrix: COOMatrix, accumulate_into=None, **kwargs):
        super().__init__(**kwargs)
        self.matrix = matrix
        #: when set (HYB), accumulate into an existing y buffer
        self._shared_y = accumulate_into

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    def _prepare(self) -> None:
        self._rows = self.context.alloc(self.matrix.rows, "coo_rows")
        self._cols = self.context.alloc(self.matrix.cols, "coo_cols")
        self._vals = self.context.alloc(
            self.matrix.vals.astype(self.dtype), "coo_vals"
        )
        if self._shared_y is None:
            self._y = self.context.alloc_zeros(self.nrows, self.dtype, "y")
        else:
            self._y = self._shared_y

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            run = self.execute_on(xbuf, trace, zero_y=self._shared_y is None)
            return run
        finally:
            self.context.free(xbuf)

    def execute_on(self, xbuf, trace: bool, zero_y: bool = True) -> SpMVRun:
        """Launch against an already-allocated x buffer (HYB shares it)."""
        self.prepare()
        nnz = self.matrix.nnz
        local_size = self.local_size
        rowsb, colsb, valsb, ybuf = self._rows, self._cols, self._vals, self._y
        if zero_y:
            ybuf.data[:] = 0

        def kernel(ctx, rb, cb, vb, xb, yb):
            pos = ctx.group_id * local_size + ctx.lid
            m = pos < nnz
            safe = np.clip(pos, 0, max(nnz - 1, 0))
            r = ctx.gload(rb, safe, mask=m)
            c = ctx.gload(cb, safe, mask=m)
            v = ctx.gload(vb, safe, mask=m)
            xv = ctx.gload(xb, c, mask=m)
            prod = np.where(m, v * xv, 0)
            ctx.flops(2 * int(m.sum()))
            if m.any():
                ctx.gatomic_add(yb, r[m].astype(np.int64), prod[m])

        num_groups = -(-max(nnz, 1) // local_size) if nnz else 0
        tr = launch(kernel, num_groups, local_size,
                    (rowsb, colsb, valsb, xbuf, ybuf), self.device, trace)
        return SpMVRun(y=ybuf.to_host().copy(), trace=tr)

"""Bell & Garland CSR kernels.

Two variants, matching the 2009 paper:

- **CSR-scalar** — one work-item per row.  Each lane walks its own
  row, so (a) lanes of a wavefront read *strided* positions of
  ``indices``/``data`` (poor coalescing: one transaction per lane) and
  (b) rows of different lengths diverge (idle lanes while the longest
  row in the wavefront finishes).  Both effects are measured by the
  trace, and both are exactly what makes CSR slow on diagonal matrices.
- **CSR-vector** — one wavefront per row.  Lanes read 32 consecutive
  entries of the row per step (coalesced), then reduce through local
  memory.  Wastes lanes when rows are shorter than the wavefront
  (nnz/row is 3–41 in the paper's suite, far below 32 in most).

The public alias ``CsrSpMV`` used in the figures is CSR-vector, the
stronger of the two for these matrices — matching Bell & Garland's
reported CSR numbers.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.ocl.executor import launch


class _CsrBase(GPUSpMV):
    def __init__(self, matrix: CSRMatrix, **kwargs):
        super().__init__(**kwargs)
        self.matrix = matrix

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    def _prepare(self) -> None:
        self._indptr = self.context.alloc(self.matrix.indptr, "csr_indptr")
        self._indices = self.context.alloc(self.matrix.indices, "csr_indices")
        self._data = self.context.alloc(
            self.matrix.data.astype(self.dtype), "csr_data"
        )
        self._y = self.context.alloc_zeros(self.nrows, self.dtype, "y")


class CsrScalarSpMV(_CsrBase):
    """CSR-scalar: one work-item per row."""

    name = "csr_scalar"

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            nrows = self.nrows
            local_size = self.local_size
            host_indptr = self.matrix.indptr.astype(np.int64)
            indptr, indices, data, ybuf = (
                self._indptr, self._indices, self._data, self._y,
            )

            def kernel(ctx, ptrb, idxb, datab, xb, yb):
                rows = ctx.group_id * local_size + ctx.lid
                in_rows = rows < nrows
                safe_rows = np.clip(rows, 0, nrows - 1)
                start = ctx.gload(ptrb, safe_rows, mask=in_rows).astype(np.int64)
                end = ctx.gload(ptrb, safe_rows + 1, mask=in_rows).astype(np.int64)
                lens = np.where(in_rows, end - start, 0)
                ctx.loop_trips(lens)
                acc = np.zeros(local_size, dtype=x.dtype)
                kmax = int(lens.max()) if lens.size else 0
                for k in range(kmax):
                    m = k < lens
                    pos = np.where(m, start + k, 0)
                    col = ctx.gload(idxb, pos, mask=m)
                    v = ctx.gload(datab, pos, mask=m)
                    xv = ctx.gload(xb, col, mask=m)
                    acc += np.where(m, v * xv, 0)
                    ctx.flops(2 * int(m.sum()))
                ctx.gstore(yb, safe_rows, acc, mask=in_rows)

            tr = launch(kernel, self.groups_for_rows(nrows), local_size,
                        (indptr, indices, data, xbuf, ybuf), self.device, trace)
            return SpMVRun(y=ybuf.to_host().copy(), trace=tr)
        finally:
            self.context.free(xbuf)


class CsrVectorSpMV(_CsrBase):
    """CSR-vector: one wavefront per row, local-memory reduction."""

    name = "csr"

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            nrows = self.nrows
            w = self.device.wavefront_size
            local_size = self.local_size
            rows_per_group = local_size // w
            num_groups = -(-nrows // rows_per_group)
            indptr, indices, data, ybuf = (
                self._indptr, self._indices, self._data, self._y,
            )

            def kernel(ctx, ptrb, idxb, datab, xb, yb):
                lmem = ctx.alloc_local(local_size, x.dtype)
                wf = ctx.lid // w     # which wavefront (row) each lane serves
                lane = ctx.lid % w
                rows = ctx.group_id * rows_per_group + wf
                in_rows = rows < nrows
                safe_rows = np.clip(rows, 0, nrows - 1)
                start = ctx.gload(ptrb, safe_rows, mask=in_rows & (lane == 0))
                end = ctx.gload(ptrb, safe_rows + 1, mask=in_rows & (lane == 0))
                # broadcast row bounds across the wavefront (register shuffle)
                start = np.repeat(start[lane == 0].astype(np.int64), w)
                end = np.repeat(end[lane == 0].astype(np.int64), w)
                lens = end - start
                steps = -(-lens // w)  # per-lane trips = ceil(len/w)
                ctx.loop_trips(np.where(in_rows, steps, 0))
                acc = np.zeros(local_size, dtype=x.dtype)
                kmax = int(steps.max()) if steps.size else 0
                for k in range(kmax):
                    pos = start + k * w + lane
                    m = in_rows & (pos < end)
                    pos = np.where(m, pos, 0)
                    col = ctx.gload(idxb, pos, mask=m)
                    v = ctx.gload(datab, pos, mask=m)
                    xv = ctx.gload(xb, col, mask=m)
                    acc += np.where(m, v * xv, 0)
                    ctx.flops(2 * int(m.sum()))
                # wavefront-synchronous tree reduction in local memory
                ctx.lstore(lmem, ctx.lid, acc)
                stride = w // 2
                while stride >= 1:
                    partner = ctx.lload(lmem, ctx.lid + stride, mask=lane < stride)
                    mine = ctx.lload(lmem, ctx.lid, mask=lane < stride)
                    ctx.lstore(lmem, ctx.lid, mine + partner, mask=lane < stride)
                    ctx.flops(int((lane < stride).sum()))
                    stride //= 2
                total = ctx.lload(lmem, ctx.lid, mask=lane == 0)
                ctx.gstore(yb, safe_rows, total, mask=in_rows & (lane == 0))

            tr = launch(kernel, num_groups, local_size,
                        (indptr, indices, data, xbuf, ybuf), self.device, trace)
            return SpMVRun(y=ybuf.to_host().copy(), trace=tr)
        finally:
            self.context.free(xbuf)


#: the CSR variant the figures use
CsrSpMV = CsrVectorSpMV

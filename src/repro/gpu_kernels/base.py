"""Shared machinery for GPU SpMV kernel runners.

A runner owns the device-side buffers for one matrix (allocated once,
capacity-checked) and executes the kernel for arbitrary source vectors,
returning the result and the execution trace.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.obs.recorder import maybe_span
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.executor import Context
from repro.ocl.trace import KernelTrace
from repro.resilience import faults as _flt

#: default work-group size for one-work-item-per-row kernels
DEFAULT_LOCAL_SIZE = 128


def precision_dtype(precision: str):
    """numpy dtype for "double"/"single"."""
    p = precision.lower()
    if p in ("double", "fp64"):
        return np.float64
    if p in ("single", "fp32"):
        return np.float32
    raise ValueError(f"unknown precision {precision!r}")


@dataclass
class SpMVRun:
    """Result of one kernel execution.

    ``metrics`` is optional and populated only by the instrumentation
    layer (:mod:`repro.obs` / the :func:`repro.spmv` facade);
    ``resilience`` is populated only by the resilient execution layer
    (:mod:`repro.resilience`, ``repro.spmv(..., resilience=...)``) and
    carries the :class:`~repro.resilience.engine.IncidentReport`.  The
    classic ``SpMVRun(y, trace)`` construction is unchanged.
    """

    y: np.ndarray
    trace: KernelTrace
    metrics: Optional[Dict[str, Any]] = field(default=None, compare=False)
    resilience: Optional[Any] = field(default=None, compare=False)


class GPUSpMV(abc.ABC):
    """Base class for SpMV kernel runners.

    Subclasses implement :meth:`_prepare` (allocate matrix buffers) and
    :meth:`_execute` (launch kernels for one ``x``).

    Parameters
    ----------
    device:
        Target device spec (capacity, wavefront, transaction size).
    precision:
        "double" or "single"; matrix values and vectors are held at
        this precision on the device.
    local_size:
        Work-group size for the main kernel.
    """

    #: kernel family name for reports ("dia", "ell", ...)
    name: str = "abstract"

    def __init__(
        self,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        local_size: int = DEFAULT_LOCAL_SIZE,
    ):
        self.device = device
        self.precision = precision
        self.dtype = precision_dtype(precision)
        self.local_size = int(local_size)
        self.context = Context(device)
        self._prepared = False

    def prepare(self) -> "GPUSpMV":
        """Allocate and populate device buffers (idempotent).

        Raises :class:`~repro.ocl.errors.DeviceMemoryError` when the
        format does not fit — the paper's DIA/double case.
        """
        if not self._prepared:
            if _flt.ACTIVE is not None:
                _flt.ACTIVE.on_phase(f"{self.name}.prepare")
            with maybe_span(f"{self.name}.prepare", "prepare",
                            kernel=self.name, precision=self.precision):
                self._prepare()
            self._prepared = True
        return self

    def run(self, x: np.ndarray, trace: bool = True) -> SpMVRun:
        """Compute ``y = A @ x`` on the device."""
        self.prepare()
        if _flt.ACTIVE is not None:
            _flt.ACTIVE.on_phase(f"{self.name}.run")
        x = np.ascontiguousarray(x, dtype=self.dtype)
        if x.size != self.ncols:
            raise ValueError(f"x has length {x.size}, expected {self.ncols}")
        with maybe_span(f"{self.name}.spmv", "op", kernel=self.name,
                        precision=self.precision, nrows=self.nrows,
                        ncols=self.ncols):
            return self._execute(x, trace)

    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def nrows(self) -> int: ...

    @property
    @abc.abstractmethod
    def ncols(self) -> int: ...

    @abc.abstractmethod
    def _prepare(self) -> None: ...

    @abc.abstractmethod
    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun: ...

    # ------------------------------------------------------------------
    @property
    def device_bytes(self) -> int:
        """Bytes currently allocated on the device for this runner."""
        return self.context.allocated_bytes

    def groups_for_rows(self, nrows: int) -> int:
        """Work-groups needed at one work-item per row."""
        return -(-nrows // self.local_size)

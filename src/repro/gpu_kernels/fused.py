"""Analyzer-certified fused execution of CRSD launches.

The third execution engine (``REPRO_EXECUTOR=fused``) runs a whole
CrsdSpMV/CrsdSpMM launch as a handful of whole-matrix NumPy
expressions — one strided multiply-accumulate per diagonal of the dia
phase, one gather-multiply per ELL column of the scatter phase —
instead of simulating the kernel per work-group or per grid statement.
That is only sound when the launch is *proven* well-behaved, so entry
is gated on the PR 2 analyzer:

- :func:`~repro.analyze.bounds.check_bounds` — every baked index
  in-range, so the fused expressions can drop the per-lane guards;
- :func:`~repro.analyze.localmem.check_localmem` — the AD staging
  tiles are race-free and fit, so ``tile[lid + j]`` can be replaced by
  the direct x window it provably holds;
- :func:`~repro.analyze.batch_safety.check_batch_safety` — per-group
  y write-sets disjoint (and scatter rows pairwise distinct), so the
  whole launch can store with one vectorised assignment.

When certification fails the caller silently falls back to the
``batched`` engine; nothing here weakens correctness, it only removes
simulation overhead from launches the prover already understands.

The :class:`KernelTrace` is not measured but *synthesized*: the
closed-form :func:`~repro.analyze.predict_trace` (asserted bit-equal
to the dynamic trace on an L2-disabled device by
``tests/analyze/test_static_trace.py``) provides every counter except
L2 residency, and :func:`_l2_adjusted` replays the launch's exact
segment streams — same program order, same group-major replay the
batched engine's :meth:`BatchCtx.finalize` uses — through one
:class:`~repro.ocl.memory.SegmentCache` to split load transactions
into DRAM misses and ``l2_hits``.  The synthesized trace is computed
once per runner and copied per run, so obs metrics, roofline
derivation and serve's ``predict_gpu_time`` accounting are unchanged.

:class:`FusedKernel` is deliberately **value-free**: it bakes only the
plan and the scatter *index* arrays (pattern data) and takes the value
buffers per call, so one compiled fused callable is shared across
same-pattern matrices through the serve plan cache's pattern index.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.analyze.batch_safety import check_batch_safety
from repro.analyze.bounds import check_bounds
from repro.analyze.coalescing import predict_trace
from repro.analyze.localmem import check_localmem
from repro.analyze.model import (
    GlobalAccess,
    IndirectAccess,
    KernelModel,
    build_model,
)
from repro.analyze.report import AnalysisReport
from repro.codegen.plan import KernelPlan
from repro.ocl.device import DeviceSpec
from repro.ocl.memory import SegmentCache
from repro.ocl.trace import KernelTrace

__all__ = ["FusedCertificate", "FusedKernel", "FusedState",
           "certify_plan", "build_fused_state", "synthesize_trace"]

#: kernel-name the fused engine reports to obs spans and fault hooks
FUSED_KERNEL_NAME = "crsd_fused_kernel"


# ----------------------------------------------------------------------
# certification
# ----------------------------------------------------------------------
@dataclass
class FusedCertificate:
    """The provers' verdict on one plan (``ok`` gates fused entry)."""

    ok: bool
    reasons: Tuple[str, ...] = ()
    model: Optional[KernelModel] = None
    base_trace: Optional[KernelTrace] = None


def certify_plan(
    plan: KernelPlan,
    device: DeviceSpec,
    precision: str,
    scatter_colval: Optional[np.ndarray] = None,
    scatter_rowno: Optional[np.ndarray] = None,
) -> FusedCertificate:
    """Run the bounds, local-memory and write-disjointness provers.

    The certificate carries the :class:`KernelModel` and the raw
    closed-form trace so a passing plan pays for the analysis exactly
    once.  Certification never raises for an *unprovable* plan — it
    returns ``ok=False`` with the reasons — but a prover crash
    propagates (the runner files an incident for that case).
    """
    model = build_model(plan, precision=precision,
                        scatter_colval=scatter_colval,
                        scatter_rowno=scatter_rowno)
    report = AnalysisReport(plan=plan)
    check_bounds(model, report)
    check_localmem(model, report, device)
    check_batch_safety(model, report)
    reasons: List[str] = [str(f) for f in report.violations]
    if plan.scatter.num_rows and report.batched_write_sets_disjoint is not True:
        reasons.append(
            "scatter write-set disjointness not proved: fused stores "
            "would race")
    base = predict_trace(model, device)
    if base is None:
        reasons.append(
            "closed-form trace prediction unavailable (indirect access "
            "without baked index data)")
    ok = not reasons
    return FusedCertificate(ok=ok, reasons=tuple(reasons), model=model,
                            base_trace=base if ok else None)


# ----------------------------------------------------------------------
# the fused kernel (value-free: pattern baked, values per call)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _RegionExec:
    """One region's fused dia phase, fully precomputed from the plan."""

    slab_base: int
    nnz_per_segment: int
    nrs: int
    mrows: int
    start_row: int
    #: served y elements: ``min(nrs * mrows, nrows - start_row)``
    row_count: int
    #: per member diagonal, in emission order: ``(x window start
    #: relative to the padded x, dia_val diagonal slot)``
    terms: Tuple[Tuple[int, int], ...]


class FusedKernel:
    """Whole-matrix execution of one certified CRSD plan.

    Call signature: ``kernel(dia_val, scatter_val, x, y)`` over the
    flat device-layout arrays (column-major for SpMM); ``y`` is written
    in place, assumed pre-zeroed.  Only the plan and the scatter
    *index* arrays are baked — the instance holds no matrix values and
    is shared across same-pattern matrices.

    The arithmetic reproduces the generated codelets bit-for-bit: each
    diagonal contributes ``acc += v * x_window`` against a zero-padded
    x (the codelets' masked loads also return 0, so both sides execute
    the same IEEE operations in the same group/diagonal order), the
    prover-certified prefix guard turns the y store into one contiguous
    slice assignment, and the scatter phase overwrites its rows after
    the dia phase exactly like the second launch does.
    """

    def __init__(self, plan: KernelPlan,
                 scatter_colval: Optional[np.ndarray] = None,
                 scatter_rowno: Optional[np.ndarray] = None):
        self.plan = plan
        pad_lo, pad_hi = 0, plan.ncols
        regions: List[_RegionExec] = []
        for r in plan.regions:
            terms: List[Tuple[int, int]] = []
            for g in r.groups:
                staged = (plan.use_local_memory and plan.nvec == 1
                          and g.kind == "AD")
                for j in range(g.ndiags):
                    # an AD tile provably holds the contiguous x window
                    # starting at colv[0]; tile[lid + j] is the direct
                    # load at colv[0] + j (the local-memory prover
                    # certified exactly this)
                    c = g.colv[0] + j if staged else g.colv[j]
                    terms.append((c, g.d_first + j))
                    pad_lo = min(pad_lo, c)
                    pad_hi = max(pad_hi, c + r.nrs * r.mrows)
            regions.append(_RegionExec(
                slab_base=r.slab_base,
                nnz_per_segment=r.nnz_per_segment,
                nrs=r.nrs, mrows=r.mrows, start_row=r.start_row,
                row_count=max(0, min(r.nrs * r.mrows,
                                     plan.nrows - r.start_row)),
                terms=tuple(terms)))
        self._regions = tuple(regions)
        self._pad_lo, self._pad_hi = pad_lo, pad_hi
        if plan.scatter.num_rows:
            colv = np.asarray(scatter_colval)
            if colv.ndim == 2:  # host layout: transpose to device order
                colv = np.ascontiguousarray(colv.T).ravel()
            self._scol = colv.astype(np.int64, copy=False)
            self._srow = np.asarray(scatter_rowno,
                                    dtype=np.int64).ravel()
        else:
            self._scol = None
            self._srow = None

    # ------------------------------------------------------------------
    def __call__(self, dia_val: np.ndarray, scatter_val: np.ndarray,
                 x: np.ndarray, y: np.ndarray) -> None:
        plan = self.plan
        nvec, nrows, ncols = plan.nvec, plan.nrows, plan.ncols
        if self._regions:
            off = -self._pad_lo
            xpad = np.zeros((nvec, self._pad_hi - self._pad_lo),
                            dtype=x.dtype)
            xpad[:, off:off + ncols] = x.reshape(nvec, ncols)
            for r in self._regions:
                m = r.mrows
                span = r.nrs * m
                slab = dia_val[r.slab_base:
                               r.slab_base + r.nrs * r.nnz_per_segment]
                slab = slab.reshape(r.nrs, r.nnz_per_segment)
                accs = [np.zeros((r.nrs, m), dtype=x.dtype)
                        for _ in range(nvec)]
                for c, d in r.terms:
                    v = slab[:, d * m:(d + 1) * m]
                    for j in range(nvec):
                        w = xpad[j, off + c:off + c + span]
                        accs[j] += v * w.reshape(r.nrs, m)
                for j in range(nvec):
                    lo = j * nrows + r.start_row
                    y[lo:lo + r.row_count] = \
                        accs[j].ravel()[:r.row_count]
        if self._srow is not None:
            num = self._srow.size
            xm = x.reshape(nvec, ncols)
            accs = [np.zeros(num, dtype=x.dtype) for _ in range(nvec)]
            for k in range(self.plan.scatter.width):
                c = self._scol[k * num:(k + 1) * num]
                v = scatter_val[k * num:(k + 1) * num]
                for j in range(nvec):
                    accs[j] += v * xm[j, c]
            for j in range(nvec):
                # rows pairwise distinct (certified): plain overwrite,
                # after the dia phase, like the second launch
                y[j * nrows + self._srow] = accs[j]


# ----------------------------------------------------------------------
# trace synthesis
# ----------------------------------------------------------------------
def _segment_streams(idx: np.ndarray, active: np.ndarray, itemsize: int,
                     device: DeviceSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group transaction segment ids of one vectorised access.

    ``idx``/``active`` are ``(num_groups, lanes)``; returns the
    concatenated per-group segment streams plus group offsets, each
    group's stream identical to what
    :func:`~repro.ocl.memory.wavefront_segments` returns for its row —
    the same pad-sort-dedup construction, vectorised over groups.
    """
    ngroups, lanes = idx.shape
    w = device.wavefront_size
    nwf = -(-lanes // w)
    pad = nwf * w - lanes
    seg = idx * itemsize // device.transaction_bytes
    if pad:
        seg = np.concatenate(
            [seg, np.full((ngroups, pad), -1, dtype=np.int64)], axis=1)
        active = np.concatenate(
            [active, np.zeros((ngroups, pad), dtype=bool)], axis=1)
    seg = np.where(active, seg, np.int64(-1)).reshape(ngroups, nwf, w)
    seg_sorted = np.sort(seg, axis=2)
    newseg = np.ones(seg_sorted.shape, dtype=bool)
    newseg[:, :, 1:] = seg_sorted[:, :, 1:] != seg_sorted[:, :, :-1]
    newseg &= seg_sorted >= 0
    segments = seg_sorted[newseg]  # C order = (group, wavefront) order
    counts = newseg.sum(axis=(1, 2))
    offsets = np.zeros(ngroups + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return segments, offsets


def _affine_streams(acc: GlobalAccess, model: KernelModel,
                    device: DeviceSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Segment streams of an affine access over its ``(seg, lane)``
    iteration space, guards and lane bound applied."""
    segs = np.arange(acc.nsegs, dtype=np.int64).reshape(-1, 1)
    lanes = np.arange(acc.lanes, dtype=np.int64)
    idx = acc.base + acc.seg_coeff * segs + acc.lane_coeff * lanes
    active = np.ones(idx.shape, dtype=bool)
    if acc.lane_bound is not None:
        active &= lanes < acc.lane_bound
    if acc.guard_lo is not None:
        active &= idx >= acc.guard_lo
    if acc.guard_hi is not None:
        active &= idx < acc.guard_hi
    itemsize = (model.index_itemsize
                if acc.buffer in ("scatter_colval", "scatter_rowno")
                else model.itemsize)
    return _segment_streams(idx, active, itemsize, device)


def _scatter_program_order(model: KernelModel):
    """The scatter kernel's accesses in emitted statement order:
    per ELL column the colval load, the val load and the ``nvec`` x
    gathers; then the rowno load; then the ``nvec`` y stores."""
    sm = model.scatter
    nvec = model.plan.nvec
    ordered: List[object] = []
    for k in range(sm.width):
        ordered.append(sm.accesses[2 * k])        # scatter_colval
        ordered.append(sm.accesses[2 * k + 1])    # scatter_val
        ordered.extend(sm.indirect[k * nvec:(k + 1) * nvec])
    ordered.append(sm.accesses[-1])               # scatter_rowno
    ordered.extend(sm.indirect[sm.width * nvec:])  # y stores
    return ordered


def _l2_adjusted(model: KernelModel, device: DeviceSpec,
                 base: KernelTrace) -> KernelTrace:
    """The closed-form trace with the L2 model applied.

    Replays the launch's segment streams through one
    :class:`SegmentCache` in the exact order the batched engine's
    deferred replay uses — region by region, group-major within each,
    accesses in program order, then the scatter launch sharing the same
    cache — and moves the absorbed load transactions into ``l2_hits``.
    """
    tr = dataclasses.replace(base)
    if device.l2_bytes <= 0:
        return tr
    cache = SegmentCache(device.l2_bytes, device.transaction_bytes)
    hits = 0

    def replay(entries, num_groups):
        nonlocal hits
        streams = []
        for acc in entries:
            if isinstance(acc, IndirectAccess):
                active = (acc.active if acc.active is not None
                          else np.ones(acc.index_grid.shape, dtype=bool))
                segs, offs = _segment_streams(
                    np.asarray(acc.index_grid, dtype=np.int64), active,
                    model.itemsize, device)
            else:
                segs, offs = _affine_streams(acc, model, device)
            streams.append((acc.kind == "load", acc.buffer, segs, offs))
        for g in range(num_groups):
            for is_load, buf, segs, offs in streams:
                s = segs[offs[g]:offs[g + 1]]
                if s.size == 0:
                    continue
                misses = cache.access(buf, s)
                if is_load:
                    hits += int(s.size) - misses

    for rm in model.regions:
        replay(rm.accesses, rm.region.nrs)
    if model.scatter is not None and model.scatter.num_rows:
        replay(_scatter_program_order(model), model.scatter.num_groups)
    tr.global_load_transactions -= hits
    tr.l2_hits += hits
    return tr


def synthesize_trace(model: KernelModel, device: DeviceSpec,
                     base: Optional[KernelTrace] = None) -> KernelTrace:
    """The trace a traced batched execution of ``model`` would record.

    ``base`` is the L2-free closed-form prediction (recomputed when not
    supplied); the L2 split is replayed on top.  Call once per runner
    and hand out copies — the result is a pure function of the plan.
    """
    if base is None:
        base = predict_trace(model, device)
    if base is None:
        raise ValueError("closed-form trace prediction unavailable for "
                         "this model; plan is not fused-certifiable")
    return _l2_adjusted(model, device, base)


# ----------------------------------------------------------------------
# runner-facing bundle
# ----------------------------------------------------------------------
@dataclass
class FusedState:
    """Everything a runner needs to serve fused runs (pattern-pure)."""

    certificate: FusedCertificate
    kernel: FusedKernel
    #: synthesized trace of one traced run (copied per run)
    trace: KernelTrace
    work_groups: int = field(init=False, default=0)
    wavefronts: int = field(init=False, default=0)

    def __post_init__(self):
        self.work_groups = self.trace.work_groups
        self.wavefronts = self.trace.wavefronts

    def run_trace(self, trace: bool) -> KernelTrace:
        """A fresh :class:`KernelTrace` for one run (minimal counters —
        the launch geometry — when tracing is off, like the dynamic
        engines)."""
        if trace:
            return dataclasses.replace(self.trace)
        return KernelTrace(work_groups=self.work_groups,
                           wavefronts=self.wavefronts)


def build_fused_state(
    plan: KernelPlan,
    device: DeviceSpec,
    precision: str,
    scatter_colval: Optional[np.ndarray] = None,
    scatter_rowno: Optional[np.ndarray] = None,
) -> Tuple[Optional[FusedState], FusedCertificate]:
    """Certify ``plan`` and build the fused execution state.

    Returns ``(state, certificate)``; ``state`` is ``None`` when the
    provers decline (the certificate then carries the reasons).
    """
    cert = certify_plan(plan, device, precision,
                        scatter_colval=scatter_colval,
                        scatter_rowno=scatter_rowno)
    if not cert.ok:
        return None, cert
    kernel = FusedKernel(plan, scatter_colval=scatter_colval,
                         scatter_rowno=scatter_rowno)
    trace = synthesize_trace(cert.model, device, cert.base_trace)
    return FusedState(certificate=cert, kernel=kernel, trace=trace), cert

"""Symmetric CRSD SpMV runner: half-storage codelets on the device.

Only the half slab (``sym_dia_val``) travels to the device — stored
diagonals with offset ``>= 0``, diagonal-major per region — and every
index is baked into the generated kernel.  Each stored run is read
twice per segment (forward term and guarded mirror term) but *streamed
from DRAM once*: the mirror read lands on lines the forward read of the
neighbouring segment brought into L2, so DRAM value traffic roughly
halves versus the full carrier, which is the point of the format.

Single launch, no scatter pass.  The execution engine follows
``REPRO_EXECUTOR`` like the full runner; the fused engine has no
symmetric lowering yet, so ``fused`` serves through the batched engine
(the codelets are identical — this is an engine choice, not a fallback
incident).
"""

from __future__ import annotations

from repro.codegen.sym_codelet import build_sym_plan, generate_sym_python_kernel
from repro.core.symcrsd import SymCRSDMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.ocl.executor import (
    executor_mode,
    launch,
    launch_batched,
    make_launch_cache,
)


class SymCrsdSpMV(GPUSpMV):
    """Generated-codelet symmetric CRSD SpMV runner.

    Parameters
    ----------
    matrix:
        The symmetric half carrier.
    strict:
        Run the symmetric analyzer over the plan before compiling;
        raises :class:`~repro.analyze.report.KernelAnalysisError` on
        any violation.
    """

    name = "sym_crsd"

    def __init__(self, matrix: SymCRSDMatrix, strict: bool = False,
                 **kwargs):
        kwargs.setdefault("local_size", matrix.mrows)
        super().__init__(**kwargs)
        self.matrix = matrix
        self.plan = build_sym_plan(matrix)
        if strict:
            from repro.analyze.report import KernelAnalysisError
            from repro.analyze.symmetric import analyze_sym_plan

            report = analyze_sym_plan(self.plan, device=self.device,
                                      precision=self.precision)
            if not report.ok:
                raise KernelAnalysisError(report)
        self.kernel = generate_sym_python_kernel(self.plan)

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    @property
    def opencl_source(self) -> str:
        """The OpenCL C rendering of the same kernel (for inspection)."""
        from repro.codegen.sym_codelet import generate_sym_opencl_source

        return generate_sym_opencl_source(self.plan, self.precision)

    def _prepare(self) -> None:
        self._sym_val = self.context.alloc(
            self.matrix.sym_val.astype(self.dtype), "sym_dia_val"
        )
        self._y = self.context.alloc_zeros(self.nrows, self.dtype, "y")

    def _execute(self, x, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            ybuf = self._y
            ybuf.data[:] = 0
            batched = executor_mode() != "pergroup"
            do_launch = launch_batched if batched else launch
            kernel = (self.kernel.dia_kernel_batched if batched
                      else self.kernel.dia_kernel)
            cache = make_launch_cache(self.device, trace)
            tr = do_launch(
                kernel,
                self.plan.num_groups,
                self.plan.local_size,
                (self._sym_val, xbuf, ybuf),
                self.device,
                trace,
                cache,
            )
            return SpMVRun(y=ybuf.to_host().copy(), trace=tr)
        finally:
            self.context.free(xbuf)

"""GPU SpMV kernels in the style of Bell & Garland (2009).

The paper compares CRSD against the DIA, ELL, CSR and HYB kernels of
"Implementing sparse matrix-vector multiplication on throughput-
oriented processors".  These modules re-implement those kernels'
*data layouts and access patterns* against the simulated device in
:mod:`repro.ocl`:

- :mod:`repro.gpu_kernels.dia`  — one work-item per row over the DIA slab
- :mod:`repro.gpu_kernels.ell`  — one work-item per row, column-major slab
- :mod:`repro.gpu_kernels.csr`  — CSR-scalar (work-item/row) and
  CSR-vector (wavefront/row)
- :mod:`repro.gpu_kernels.coo`  — atomics-based COO kernel (HYB tail)
- :mod:`repro.gpu_kernels.hyb`  — ELL slab + COO tail
- :mod:`repro.gpu_kernels.crsd_runner` — the generated-codelet CRSD
  kernel (diagonal part + scatter ELL part)

Every runner allocates through a :class:`~repro.ocl.executor.Context`
(so device capacity is enforced), executes functionally, and returns
``(y, KernelTrace)`` for the performance model.
"""

from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.gpu_kernels.dia import DiaSpMV
from repro.gpu_kernels.ell import EllSpMV
from repro.gpu_kernels.csr import CsrScalarSpMV, CsrVectorSpMV
from repro.gpu_kernels.coo import CooSpMV
from repro.gpu_kernels.hyb import HybSpMV
from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV
from repro.gpu_kernels.sym_runner import SymCrsdSpMV

__all__ = [
    "GPUSpMV",
    "SpMVRun",
    "DiaSpMV",
    "EllSpMV",
    "CsrScalarSpMV",
    "CsrVectorSpMV",
    "CooSpMV",
    "HybSpMV",
    "CrsdSpMV",
    "CrsdSpMM",
    "SymCrsdSpMV",
]

"""Bell & Garland DIA kernel: one work-item per row.

The device holds the DIA slab column-major per diagonal
(``data[d * nrows + row]``) so consecutive work-items load consecutive
values — fully coalesced.  The cost of the format is not access
pattern but *volume*: every padded zero inside the matrix extent is
loaded and multiplied, which is why DIA collapses on matrices with
many sparse diagonals (s3dkt3m2: 655 diagonals, 41 nnz/row).
"""

from __future__ import annotations

import numpy as np

from repro.formats.dia import DIAMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.ocl.executor import executor_mode, launch, launch_batched


class DiaSpMV(GPUSpMV):
    """DIA SpMV runner (Bell & Garland layout)."""

    name = "dia"

    def __init__(self, matrix: DIAMatrix, **kwargs):
        super().__init__(**kwargs)
        self.matrix = matrix

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    def _prepare(self) -> None:
        # diagonal-major, row-minor: data[d*nrows + row]
        self._data = self.context.alloc(
            self.matrix.data.astype(self.dtype).ravel(), "dia_data"
        )
        self._offsets = self.context.alloc(self.matrix.offsets, "dia_offsets")
        self._y = self.context.alloc_zeros(self.nrows, self.dtype, "y")

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            nrows, ncols = self.nrows, self.ncols
            ndiags = self.matrix.ndiags
            host_offsets = self.matrix.offsets.astype(np.int64)
            local_size = self.local_size
            data, offsets, ybuf = self._data, self._offsets, self._y

            # shape-generic over both engines: rows is (local_size,)
            # per-group and (num_groups, local_size) batched
            def kernel(ctx, data, offsets, xb, yb):
                rows = ctx.group_id * local_size + ctx.lid
                in_rows = rows < nrows
                acc = np.zeros(rows.shape, dtype=x.dtype)
                for d in range(ndiags):
                    # the offsets array is tiny and cached; load once per
                    # work-group rather than per lane
                    off = host_offsets[d]
                    cols = rows + off
                    m = in_rows & (cols >= 0) & (cols < ncols)
                    v = ctx.gload(data, d * nrows + rows, mask=m)
                    xv = ctx.gload(xb, np.clip(cols, 0, ncols - 1), mask=m)
                    acc += v * xv
                    ctx.flops(2 * int(m.sum()))
                ctx.gstore(yb, np.clip(rows, 0, nrows - 1), acc, mask=in_rows)

            # no fused path for DIA: anything but the per-group oracle
            # runs through the batched engine
            do_launch = launch if executor_mode() == "pergroup" else launch_batched
            tr = do_launch(kernel, self.groups_for_rows(nrows), local_size,
                           (data, offsets, xbuf, ybuf), self.device, trace)
            return SpMVRun(y=ybuf.to_host().copy(), trace=tr)
        finally:
            # x is transient per run; release its accounting share
            self.context.free(xbuf)

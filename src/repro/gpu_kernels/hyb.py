"""HYB kernel: the ELL slab kernel followed by the COO tail kernel.

Both kernels accumulate into the same device ``y``; traces are merged.
"""

from __future__ import annotations

import numpy as np

from repro.formats.hyb import HYBMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.ocl.executor import launch


class HybSpMV(GPUSpMV):
    """HYB SpMV runner (ELL width chosen by the cusp heuristic)."""

    name = "hyb"

    def __init__(self, matrix: HYBMatrix, **kwargs):
        super().__init__(**kwargs)
        self.matrix = matrix

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    def _prepare(self) -> None:
        idx_cm, data_cm = self.matrix.ell.column_major_view()
        self._ell_indices = self.context.alloc(
            np.ascontiguousarray(idx_cm).ravel(), "hyb_ell_indices"
        )
        self._ell_data = self.context.alloc(
            np.ascontiguousarray(data_cm).astype(self.dtype).ravel(), "hyb_ell_data"
        )
        self._coo_rows = self.context.alloc(self.matrix.coo.rows, "hyb_coo_rows")
        self._coo_cols = self.context.alloc(self.matrix.coo.cols, "hyb_coo_cols")
        self._coo_vals = self.context.alloc(
            self.matrix.coo.vals.astype(self.dtype), "hyb_coo_vals"
        )
        self._y = self.context.alloc_zeros(self.nrows, self.dtype, "y")

    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            nrows = self.nrows
            width = self.matrix.ell.width
            local_size = self.local_size
            ybuf = self._y
            ybuf.data[:] = 0
            idxb, datab = self._ell_indices, self._ell_data

            def ell_kernel(ctx, idxb, datab, xb, yb):
                rows = ctx.group_id * local_size + ctx.lid
                in_rows = rows < nrows
                safe_rows = np.clip(rows, 0, nrows - 1)
                acc = np.zeros(local_size, dtype=x.dtype)
                for k in range(width):
                    v = ctx.gload(datab, k * nrows + safe_rows, mask=in_rows)
                    col = ctx.gload(idxb, k * nrows + safe_rows, mask=in_rows)
                    xv = ctx.gload(xb, col, mask=in_rows)
                    acc += v * xv
                    ctx.flops(2 * int(in_rows.sum()))
                ctx.gstore(yb, safe_rows, acc, mask=in_rows)

            tr = launch(ell_kernel, self.groups_for_rows(nrows), local_size,
                        (idxb, datab, xbuf, ybuf), self.device, trace)

            nnz_tail = self.matrix.coo.nnz
            if nnz_tail:
                rowsb, colsb, valsb = self._coo_rows, self._coo_cols, self._coo_vals

                def coo_kernel(ctx, rb, cb, vb, xb, yb):
                    pos = ctx.group_id * local_size + ctx.lid
                    m = pos < nnz_tail
                    safe = np.clip(pos, 0, nnz_tail - 1)
                    r = ctx.gload(rb, safe, mask=m)
                    c = ctx.gload(cb, safe, mask=m)
                    v = ctx.gload(vb, safe, mask=m)
                    xv = ctx.gload(xb, c, mask=m)
                    prod = np.where(m, v * xv, 0)
                    ctx.flops(2 * int(m.sum()))
                    if m.any():
                        ctx.gatomic_add(yb, r[m].astype(np.int64), prod[m])

                tr2 = launch(coo_kernel, -(-nnz_tail // local_size), local_size,
                             (rowsb, colsb, valsb, xbuf, ybuf), self.device, trace)
                tr.merge(tr2)
            return SpMVRun(y=ybuf.to_host().copy(), trace=tr)
        finally:
            self.context.free(xbuf)

"""Shard-by-shard CRSD execution through the existing engines.

:class:`ShardedSpMV` runs one certified row-block
:class:`~repro.shard.plan.ShardPlan` shard at a time — each shard's
sub-plan compiled through the normal codelet generator and launched
through the batched / per-group / fused engines against the *full*
``dia_val`` / ``x`` / ``y`` buffers (sub-plans keep absolute
addressing; only the scatter side structure is re-packed per shard).
Because the certificate proved halo coverage, write disjointness and
deterministic overwrite order, the concatenation of shard launches is
bit-identical to the unsharded run — the differential suite holds it
to ``np.array_equal``, not allclose.

The runner *refuses* uncertified plans with
:class:`~repro.shard.plan.ShardPlanError`: a shard plan is either
proven or not executed, never silently wrong.

Each shard's dia and scatter launches share one private L2
:class:`~repro.ocl.memory.SegmentCache` — the exact cache topology the
certificate's per-shard trace predictions replay, so executed traced
counters match ``certificate.per_shard_traces`` counter for counter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analyze.sharding import ShardCertificate
from repro.codegen.python_codelet import generate_python_kernel
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.gpu_kernels.fused import build_fused_state
from repro.obs.recorder import maybe_span
from repro.ocl.executor import (
    executor_mode,
    launch,
    launch_batched,
    make_launch_cache,
)
from repro.ocl.trace import KernelTrace
from repro.shard.plan import ShardPlanError

__all__ = ["ShardedSpMV"]


class ShardedSpMV(GPUSpMV):
    """Row-block sharded CRSD SpMV runner.

    Parameters
    ----------
    matrix:
        The CRSD matrix the certificate was issued for.
    certificate:
        A passing :class:`~repro.analyze.sharding.ShardCertificate`
        (``certify_shard_plan`` output).  A failing certificate raises
        :class:`ShardPlanError` naming the violated provers.
    """

    name = "crsd_sharded"

    def __init__(self, matrix: CRSDMatrix, certificate: ShardCertificate,
                 shards: Optional[Sequence[int]] = None, **kwargs):
        kwargs.setdefault("local_size", matrix.mrows)
        super().__init__(**kwargs)
        if not isinstance(matrix, CRSDMatrix):
            raise ShardPlanError(
                "sharded execution requires a CRSD matrix; got "
                f"{type(matrix).__name__}")
        if not certificate.ok:
            raise ShardPlanError(
                "refusing to execute an uncertified shard plan: "
                + ("; ".join(certificate.reasons) or "no certificate"))
        if len(certificate.subplans) != len(certificate.shard_plan.shards):
            raise ShardPlanError(
                "certificate carries no per-shard sub-plans; re-run "
                "certify_shard_plan")
        self.matrix = matrix
        self.certificate = certificate
        self.shard_plan = certificate.shard_plan
        self.subplans = certificate.subplans
        # the shards this runner executes: all of them by default, or a
        # subset — the cluster gives each device a runner over exactly
        # the shard indices it owns (write disjointness is certified,
        # so a subset's rows equal the full run's rows bit for bit)
        if shards is None:
            active = tuple(range(len(self.subplans)))
        else:
            active = tuple(sorted({int(s) for s in shards}))
            for s in active:
                if not 0 <= s < len(self.subplans):
                    raise ShardPlanError(
                        f"shard index {s} outside the plan's "
                        f"{len(self.subplans)} shards")
        self.active_shards = active
        active_set = set(active)
        # one compiled codelet set per non-empty active shard
        self.kernels = [
            generate_python_kernel(sp)
            if (i in active_set and (sp.num_groups or sp.scatter.num_rows))
            else None
            for i, sp in enumerate(self.subplans)
        ]
        # per-shard fused state: None = not built, False = declined
        self._fused_states: List[object] = [None] * len(self.subplans)

    @property
    def nrows(self) -> int:
        return self.matrix.nrows

    @property
    def ncols(self) -> int:
        return self.matrix.ncols

    @property
    def num_shards(self) -> int:
        return self.shard_plan.num_shards

    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        self._dia_val = self.context.alloc(
            self.matrix.dia_val.astype(self.dtype), "crsd_dia_val")
        active = set(self.active_shards)
        self._shard_scatter = []
        for spec in self.shard_plan.shards:
            lo, hi = spec.scatter_start, spec.scatter_end
            if hi <= lo or spec.index not in active:
                self._shard_scatter.append(None)
                continue
            colval = self.matrix.scatter_colval[lo:hi]
            val = self.matrix.scatter_val[lo:hi]
            self._shard_scatter.append((
                self.context.alloc(
                    np.ascontiguousarray(colval.T).ravel(),
                    f"scatter_colval_s{spec.index}"),
                self.context.alloc(
                    np.ascontiguousarray(val.T).astype(self.dtype).ravel(),
                    f"scatter_val_s{spec.index}"),
                self.context.alloc(
                    self.matrix.scatter_rowno[lo:hi],
                    f"scatter_rowno_s{spec.index}"),
            ))
        self._y = self.context.alloc_zeros(self.nrows, self.dtype, "y")

    # ------------------------------------------------------------------
    def _execute(self, x: np.ndarray, trace: bool) -> SpMVRun:
        xbuf = self.context.alloc(x, "x")
        try:
            ybuf = self._y
            ybuf.data[:] = 0
            mode = executor_mode()
            total = KernelTrace()
            for i in self.active_shards:
                spec = self.shard_plan.shards[i]
                if self.kernels[i] is None:
                    continue  # empty shard: no work, no launches
                with maybe_span(f"{self.name}.shard", "op",
                                kernel=self.name, shard=spec.index,
                                row_start=spec.row_start,
                                row_end=spec.row_end,
                                halo_lo=spec.halo_lo,
                                halo_hi=spec.halo_hi):
                    tr = self._execute_shard(i, spec, xbuf, ybuf, trace,
                                             mode)
                total.merge(tr)
            return SpMVRun(y=ybuf.to_host().copy(), trace=total)
        finally:
            self.context.free(xbuf)

    def _execute_shard(self, i: int, spec, xbuf, ybuf, trace: bool,
                       mode: str) -> KernelTrace:
        subplan = self.subplans[i]
        if mode == "fused":
            tr = self._execute_shard_fused(i, spec, xbuf, ybuf, trace)
            if tr is not None:
                return tr
            mode = "batched"  # this shard's sub-plan declined: fall back
        kern = self.kernels[i]
        if mode == "batched":
            do_launch = launch_batched
            dia_kernel = kern.dia_kernel_batched
            scatter_kernel = kern.scatter_kernel_batched
        else:
            do_launch = launch
            dia_kernel = kern.dia_kernel
            scatter_kernel = kern.scatter_kernel
        # the shard's private L2: shared by its dia and scatter
        # launches, fresh for the next shard
        cache = make_launch_cache(self.device, trace)
        tr = do_launch(
            dia_kernel,
            subplan.num_groups,
            subplan.local_size,
            (self._dia_val, xbuf, ybuf),
            self.device,
            trace,
            cache,
        )
        if scatter_kernel is not None and subplan.scatter.num_rows:
            scol, sval, srow = self._shard_scatter[i]
            groups = -(-subplan.scatter.num_rows // subplan.local_size)
            tr2 = do_launch(
                scatter_kernel,
                groups,
                subplan.local_size,
                (scol, sval, srow, xbuf, ybuf),
                self.device,
                trace,
                cache,
            )
            tr.merge(tr2)
        return tr

    # ------------------------------------------------------------------
    def _shard_fused_state(self, i: int, spec):
        state = self._fused_states[i]
        if state is None:
            lo, hi = spec.scatter_start, spec.scatter_end
            try:
                state, _cert = build_fused_state(
                    self.subplans[i], self.device, self.precision,
                    scatter_colval=self.matrix.scatter_colval[lo:hi],
                    scatter_rowno=self.matrix.scatter_rowno[lo:hi])
            except Exception:
                state = None  # crash counts as a decline for this shard
            self._fused_states[i] = state if state is not None else False
        return self._fused_states[i] or None

    def _execute_shard_fused(self, i: int, spec, xbuf, ybuf,
                             trace: bool) -> Optional[KernelTrace]:
        state = self._shard_fused_state(i, spec)
        if state is None:
            return None
        scatter = self._shard_scatter[i]
        sval = (scatter[1].data if scatter is not None
                else np.empty(0, dtype=self.dtype))
        state.kernel(self._dia_val.data, sval, xbuf.data, ybuf.data)
        return state.run_trace(trace)

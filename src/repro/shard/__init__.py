"""Row-block shard planning and certified shard-by-shard execution.

:class:`ShardPlanner` emits wavefront-aligned :class:`ShardPlan`\\ s
with statically exact per-shard ``x`` halo intervals;
:func:`repro.analyze.sharding.certify_shard_plan` proves (or declines)
them; :class:`ShardedSpMV` executes certified plans shard by shard,
bit-identical to the unsharded engines.  The serve-layer
:class:`~repro.serve.cache.PlanCache` memoises certificates under the
pattern fingerprint (:meth:`PlanCache.shard_certificate`) so the
future cluster router inherits them for free.
"""

from repro.shard.executor import ShardedSpMV
from repro.shard.plan import ShardPlan, ShardPlanError, ShardPlanner, ShardSpec

__all__ = [
    "ShardPlan",
    "ShardPlanError",
    "ShardPlanner",
    "ShardSpec",
    "ShardedSpMV",
]

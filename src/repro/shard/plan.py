"""Row-block shard planning for the multi-device serving cluster.

A :class:`ShardPlan` splits a matrix's row space ``[0, nrows)`` into
``N`` contiguous blocks, each annotated with the *halo interval* of
``x`` the block's kernels may read.  For diagonal sparse matrices that
interval is statically exact — ``[row_start + min_offset,
row_end + max_offset)`` clipped to bounds, with the extreme offsets
read straight off :meth:`COOMatrix.diagonal_offsets` — which is what
makes shard execution certifiable without per-request checks (see
:mod:`repro.analyze.sharding`).

The planner aligns boundaries to the CRSD segment height ``mrows`` (or
the device wavefront for the DIA/ELL/HYB degradation-ladder rungs), so
a boundary never cuts a row segment and the per-shard sub-plans launch
whole work-groups.  Caller-supplied boundaries are validated against
:func:`~repro.core.crsd.compatible_wavefront` and rejected with
:class:`ShardPlanError` when misaligned; boundaries that are aligned
but still cut a segment (region start rows need not be multiples of
``mrows`` globally) survive planning and are *declined* by the
``shard-disjoint`` prover instead — never silently wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analyze.sharding import shard_segment_range
from repro.core.crsd import CRSDMatrix, DEFAULT_WAVEFRONT, compatible_wavefront

__all__ = ["ShardPlan", "ShardPlanError", "ShardPlanner", "ShardSpec",
           "auto_boundaries"]


def auto_boundaries(nrows: int, alignment: int,
                    num_shards: int) -> List[int]:
    """The alignment-quantised even-split interior boundaries.

    Pure in ``(nrows, alignment, num_shards)`` — the cluster's
    certificate store uses exactly these rows as part of its key, so
    the boundary arithmetic must live in one place.
    """
    cuts: List[int] = []
    prev = 0
    for i in range(1, num_shards):
        ideal = i * nrows / num_shards
        cut = int(round(ideal / alignment)) * alignment
        cut = min(max(cut, prev), nrows)
        cuts.append(cut)
        prev = cut
    return cuts


class ShardPlanError(ValueError):
    """A shard plan request that can never be certified (bad shard
    count, misaligned or non-monotonic boundaries)."""


@dataclass(frozen=True)
class ShardSpec:
    """One row-block shard.

    ``[row_start, row_end)`` is the block of ``y`` rows this shard
    owns; ``[halo_lo, halo_hi)`` the interval of ``x`` its kernels may
    read (already clipped to ``[0, ncols)``);
    ``[scatter_start, scatter_end)`` the slice of the sorted scatter
    row list it executes.  An empty shard has ``row_start == row_end``
    and an empty halo.
    """

    index: int
    row_start: int
    row_end: int
    halo_lo: int
    halo_hi: int
    scatter_start: int = 0
    scatter_end: int = 0

    @property
    def num_rows(self) -> int:
        return self.row_end - self.row_start

    @property
    def halo_elements(self) -> int:
        return max(0, self.halo_hi - self.halo_lo)

    def to_dict(self) -> Dict[str, int]:
        """JSON-serialisable shard geometry."""
        return {
            "index": self.index,
            "row_start": self.row_start,
            "row_end": self.row_end,
            "halo_lo": self.halo_lo,
            "halo_hi": self.halo_hi,
            "scatter_start": self.scatter_start,
            "scatter_end": self.scatter_end,
        }


@dataclass(frozen=True)
class ShardPlan:
    """A complete row-block partition of one matrix."""

    format: str
    nrows: int
    ncols: int
    alignment: int
    num_shards: int
    min_offset: int
    max_offset: int
    shards: Tuple[ShardSpec, ...]

    def to_dict(self) -> Dict:
        """JSON-serialisable plan (nested in the certificate payload)."""
        return {
            "format": self.format,
            "nrows": self.nrows,
            "ncols": self.ncols,
            "alignment": self.alignment,
            "num_shards": self.num_shards,
            "min_offset": self.min_offset,
            "max_offset": self.max_offset,
            "shards": [s.to_dict() for s in self.shards],
        }


class ShardPlanner:
    """Emit wavefront-aligned row-block :class:`ShardPlan`\\ s.

    Works for any :class:`~repro.formats.base.SparseFormat` rung of the
    degradation ladder — the halo intervals only need the diagonal
    offsets — but only CRSD plans are *certifiable* (the other formats
    have no symbolic access model; ``certify_shard_plan`` declines them
    by name).

    ``coo`` short-circuits the offset scan when the caller already
    holds the COO triplets; ``alignment`` overrides the boundary
    quantum (default: the matrix's ``mrows`` for CRSD, the device
    wavefront otherwise).
    """

    def __init__(self, matrix, coo=None, alignment: Optional[int] = None):
        self.matrix = matrix
        self.nrows = int(matrix.nrows)
        self.ncols = int(matrix.ncols)
        if alignment is None:
            alignment = (int(matrix.mrows) if isinstance(matrix, CRSDMatrix)
                         else DEFAULT_WAVEFRONT)
        if alignment <= 0:
            raise ShardPlanError(
                f"alignment must be positive, got {alignment}")
        self.alignment = alignment
        offsets = (coo if coo is not None else matrix.to_coo()
                   ).diagonal_offsets()
        if offsets.size:
            self.min_offset = int(offsets.min())
            self.max_offset = int(offsets.max())
        else:  # all-zero matrix: no reads at all, zero-width halo
            self.min_offset = 0
            self.max_offset = 0

    # ------------------------------------------------------------------
    def plan(self, num_shards: int,
             boundaries: Optional[Sequence[int]] = None) -> ShardPlan:
        """The row-block plan for ``num_shards`` shards.

        ``boundaries`` (the ``num_shards - 1`` interior split rows)
        default to the alignment-quantised even split; caller-supplied
        values must be sorted, in ``[0, nrows]`` and aligned to
        ``compatible_wavefront(alignment)`` or the request is rejected
        with :class:`ShardPlanError`.
        """
        if num_shards < 1:
            raise ShardPlanError(
                f"num_shards must be >= 1, got {num_shards}")
        if boundaries is None:
            cuts = self._auto_boundaries(num_shards)
        else:
            cuts = self._validate_boundaries(num_shards, boundaries)
        edges = [0] + cuts + [self.nrows]
        shards = tuple(
            self._shard_spec(i, edges[i], edges[i + 1])
            for i in range(num_shards)
        )
        return ShardPlan(
            format=getattr(self.matrix, "name", type(self.matrix).__name__),
            nrows=self.nrows,
            ncols=self.ncols,
            alignment=self.alignment,
            num_shards=num_shards,
            min_offset=self.min_offset,
            max_offset=self.max_offset,
            shards=shards,
        )

    # ------------------------------------------------------------------
    def _auto_boundaries(self, num_shards: int) -> List[int]:
        return auto_boundaries(self.nrows, self.alignment, num_shards)

    def _validate_boundaries(self, num_shards: int,
                             boundaries: Sequence[int]) -> List[int]:
        cuts = [int(b) for b in boundaries]
        if len(cuts) != num_shards - 1:
            raise ShardPlanError(
                f"expected {num_shards - 1} interior boundaries for "
                f"{num_shards} shards, got {len(cuts)}")
        wf = compatible_wavefront(self.alignment)
        prev = 0
        for b in cuts:
            if b < 0 or b > self.nrows:
                raise ShardPlanError(
                    f"boundary {b} outside [0, {self.nrows}]")
            if b < prev:
                raise ShardPlanError(
                    f"boundaries must be non-decreasing, got {cuts}")
            if b % wf:
                raise ShardPlanError(
                    f"boundary {b} is not aligned to the compatible "
                    f"wavefront {wf} of alignment {self.alignment}; "
                    "such a block cannot launch whole wavefronts")
            prev = b
        return cuts

    # ------------------------------------------------------------------
    def _shard_spec(self, index: int, row_start: int,
                    row_end: int) -> ShardSpec:
        if row_end <= row_start:
            return ShardSpec(index=index, row_start=row_start,
                             row_end=row_start, halo_lo=0, halo_hi=0)
        # the last covered row can exceed row_end - 1: the final
        # segment a shard owns is padded to a full mrows (its kernels
        # read x for the padded rows too, guarded by ncols)
        eff_hi = row_end
        crsd = self.matrix if isinstance(self.matrix, CRSDMatrix) else None
        if crsd is not None:
            for region in crsd.regions:
                seg_lo, seg_hi = shard_segment_range(
                    region.start_row, region.num_segments, region.mrows,
                    row_start, row_end)
                if seg_hi > seg_lo:
                    eff_hi = max(
                        eff_hi, region.start_row + seg_hi * region.mrows)
        halo_lo = max(0, row_start + self.min_offset)
        halo_hi = min(self.ncols, eff_hi + self.max_offset)
        halo_hi = max(halo_hi, halo_lo)
        scatter_start = scatter_end = 0
        if crsd is not None and crsd.num_scatter_rows:
            rowno = np.asarray(crsd.scatter_rowno, dtype=np.int64)
            scatter_start = int(np.searchsorted(rowno, row_start, "left"))
            scatter_end = int(np.searchsorted(rowno, row_end, "left"))
        return ShardSpec(
            index=index,
            row_start=row_start,
            row_end=row_end,
            halo_lo=halo_lo,
            halo_hi=halo_hi,
            scatter_start=scatter_start,
            scatter_end=scatter_end,
        )

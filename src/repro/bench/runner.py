"""Suite execution: build formats, run kernels, verify, model time.

Besides the per-figure records, the suite sweep can persist a
**benchmark trajectory**: one JSON entry per sweep appended to
``BENCH_spmv.json`` (see :func:`append_trajectory`), built from the
:mod:`repro.obs` metric layer, so successive commits accumulate a
comparable performance history.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.cpu.kernels import CpuCsrSpMV, CpuDiaSpMV
from repro.cpu.machine import CPUSpec, XEON_X5550_2S
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.gpu_kernels import (
    CrsdSpMV,
    CsrVectorSpMV,
    DiaSpMV,
    EllSpMV,
    HybSpMV,
)
from repro.matrices.suite23 import SUITE, MatrixSpec
from repro.ocl.device import TESLA_C2050, DeviceSpec
from repro.ocl.errors import DeviceMemoryError
from repro.perf.costmodel import predict_gpu_time
from repro.perf.metrics import gflops as gflops_of

#: default suite scale for benchmark runs (5% keeps the functional
#: simulation of all 23 matrices x 5 formats around a minute under the
#: batched execution engine; the per-group oracle needed 2% for the
#: same wall time)
DEFAULT_SCALE = 0.05

#: matrices are never scaled below this many rows — smaller launches
#: are latency-bound on the simulated device, which would distort the
#: relative results (the real matrices all have >= 9506 rows)
MIN_BENCH_ROWS = 4000

#: default row-segment size for CRSD in benchmarks (4 wavefronts)
DEFAULT_MROWS = 128

GPU_FORMATS = ("dia", "ell", "csr", "hyb", "crsd")

#: environment variable naming the trajectory file ``run_gpu_suite``
#: appends to (unset = no trajectory persistence)
TRAJECTORY_ENV = "REPRO_BENCH_TRAJECTORY"

#: schema tag of every trajectory file entry
TRAJECTORY_SCHEMA = "repro-bench-trajectory/v1"


def bench_scale() -> float:
    """Suite scale, overridable via ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def effective_scale(spec: MatrixSpec, scale: float,
                    min_rows: int = MIN_BENCH_ROWS) -> float:
    """Clamp ``scale`` so the generated matrix keeps at least
    ``min_rows`` rows (or the spec's own floor, when larger)."""
    floor = max(min_rows, spec.min_bench_rows or 0)
    return min(1.0, max(scale, floor / spec.paper_rows))


def dia_oom_at_full_size(spec: MatrixSpec, precision: str,
                         device: DeviceSpec = TESLA_C2050) -> bool:
    """Analytic full-size DIA device-memory check (E10).

    The af_*_k101 DIA slab in double precision is ~3.6 GB — too big to
    materialise even on this host — so the check uses the documented
    diagonal count instead of building the format:
    ``900 x 503625 x 8 B > 3 GB`` (double: OOM), ``x 4 B`` (single: fits).
    """
    if spec.full_diagonals is None:
        return False
    from repro.formats.footprint import value_itemsize
    from repro.matrices.stats import estimate_dia_bytes

    need = estimate_dia_bytes(spec.paper_rows, spec.full_diagonals, precision)
    vectors = (spec.paper_rows + spec.paper_cols) * value_itemsize(precision)
    return need + vectors > device.global_mem_bytes


def scaled_device(scale: float, device: DeviceSpec = TESLA_C2050) -> DeviceSpec:
    """Shrink capacity and fixed overheads with the problem size so the
    machine balance (and hence every *ratio*) matches full scale."""
    return device.with_overrides(
        global_mem_bytes=max(1, int(device.global_mem_bytes * scale)),
        kernel_launch_us=device.kernel_launch_us * scale,
        l2_bytes=max(1024, int(device.l2_bytes * scale)),
    )


@dataclass
class BenchRecord:
    """One (matrix, format, precision) measurement."""

    matrix_number: int
    matrix_name: str
    fmt: str
    precision: str
    nnz: int
    gflops: Optional[float]           # None => out of device memory
    seconds: Optional[float]
    oom: bool = False
    max_abs_err: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class GpuSuiteResult:
    """All records of one suite sweep plus run parameters."""

    records: List[BenchRecord]
    scale: float
    precision: str

    def by_matrix(self, number: int) -> Dict[str, BenchRecord]:
        """Records of one matrix, keyed by format name."""
        return {
            r.fmt: r for r in self.records if r.matrix_number == number
        }

    def best_baseline(self, number: int) -> Optional[BenchRecord]:
        """The best non-CRSD format for a matrix (the paper's 'optimal
        implementation of the four formats')."""
        cands = [
            r
            for r in self.records
            if r.matrix_number == number and r.fmt != "crsd" and not r.oom
        ]
        return max(cands, key=lambda r: r.gflops) if cands else None


def _build_runners(coo: COOMatrix, device: DeviceSpec, precision: str,
                   formats: Sequence[str], mrows: int,
                   use_local_memory: bool = True):
    """Instantiate the requested kernel runners for one matrix."""
    runners = {}
    for fmt in formats:
        if fmt == "dia":
            runners[fmt] = DiaSpMV(DIAMatrix.from_coo(coo), device=device,
                                   precision=precision)
        elif fmt == "ell":
            runners[fmt] = EllSpMV(ELLMatrix.from_coo(coo), device=device,
                                   precision=precision)
        elif fmt == "csr":
            runners[fmt] = CsrVectorSpMV(CSRMatrix.from_coo(coo), device=device,
                                         precision=precision)
        elif fmt == "hyb":
            runners[fmt] = HybSpMV(HYBMatrix.from_coo(coo), device=device,
                                   precision=precision)
        elif fmt == "crsd":
            crsd = CRSDMatrix.from_coo(
                coo, mrows=mrows, wavefront_size=compatible_wavefront(mrows)
            )
            runners[fmt] = CrsdSpMV(crsd, device=device, precision=precision,
                                    use_local_memory=use_local_memory)
        else:
            raise ValueError(f"unknown format {fmt!r}")
    return runners


def run_gpu_matrix(
    spec: MatrixSpec,
    scale: float,
    precision: str,
    formats: Sequence[str] = GPU_FORMATS,
    device: DeviceSpec = TESLA_C2050,
    mrows: int = DEFAULT_MROWS,
    seed: int = 0,
    use_local_memory: bool = True,
) -> List[BenchRecord]:
    """Run every requested format on one suite matrix.

    Every kernel's result is verified against the COO reference; a
    :class:`~repro.ocl.errors.DeviceMemoryError` during buffer setup is
    recorded as an OOM bar (the paper's missing DIA/double results).
    """
    scale = effective_scale(spec, scale)
    coo = spec.generate(scale=scale, seed=seed)
    dev = scaled_device(scale, device)
    rng = np.random.default_rng(seed + 17)
    x = rng.standard_normal(coo.ncols)
    ref = coo.matvec(x)
    tol = 1e-8 if precision == "double" else 1e-2
    refscale = max(1.0, float(np.abs(ref).max()))

    records: List[BenchRecord] = []
    for fmt in formats:
        if fmt == "dia" and dia_oom_at_full_size(spec, precision, device):
            records.append(
                BenchRecord(
                    matrix_number=spec.number, matrix_name=spec.name,
                    fmt=fmt, precision=precision, nnz=coo.nnz,
                    gflops=None, seconds=None, oom=True,
                )
            )
            continue
        try:
            runner = _build_runners(coo, dev, precision, [fmt], mrows,
                                    use_local_memory)[fmt]
            runner.prepare()
        except DeviceMemoryError:
            records.append(
                BenchRecord(
                    matrix_number=spec.number, matrix_name=spec.name,
                    fmt=fmt, precision=precision, nnz=coo.nnz,
                    gflops=None, seconds=None, oom=True,
                )
            )
            continue
        run = runner.run(x)
        err = float(np.abs(run.y - ref).max()) / refscale
        if err > tol:
            raise AssertionError(
                f"{fmt} kernel wrong on {spec.name}: rel err {err:.3e}"
            )
        launches = 2 if (fmt == "crsd" and runner.matrix.num_scatter_rows) else (
            2 if fmt == "hyb" and runner.matrix.coo.nnz else 1
        )
        perf = predict_gpu_time(run.trace, dev, precision, num_launches=launches,
                                size_scale=scale)
        from repro.obs.metrics import derive_metrics

        metrics = derive_metrics(run.trace, dev, precision, nnz=coo.nnz,
                                 seconds=perf.total)
        rec = BenchRecord(
            matrix_number=spec.number, matrix_name=spec.name, fmt=fmt,
            precision=precision, nnz=coo.nnz,
            gflops=gflops_of(coo.nnz, perf.total), seconds=perf.total,
            max_abs_err=err,
            extra={
                "coalescing": metrics["load_coalescing"],
                "divergence": metrics["divergence_efficiency"],
                "barriers": metrics["barriers"],
                "l2_hit_rate": metrics["l2_hit_rate"],
                "dram_bytes_per_nnz": metrics["dram_bytes_per_nnz"],
                "transactions_per_nnz": metrics["transactions_per_nnz"],
                "roofline_efficiency": metrics["roofline_efficiency"],
                "bound_bandwidth_time": perf.bandwidth_time,
                "bound_barrier_time": perf.barrier_time,
            },
        )
        records.append(rec)
    return records


def run_gpu_suite(
    scale: Optional[float] = None,
    precision: str = "double",
    formats: Sequence[str] = GPU_FORMATS,
    matrices: Optional[Sequence[int]] = None,
    device: DeviceSpec = TESLA_C2050,
    mrows: int = DEFAULT_MROWS,
    seed: int = 0,
    trajectory: Optional[Union[str, Path]] = None,
) -> GpuSuiteResult:
    """Sweep the suite (all 23 matrices by default).

    ``trajectory`` names a ``BENCH_spmv.json`` file to append this
    sweep's summary entry to (default: the ``REPRO_BENCH_TRAJECTORY``
    environment variable; unset = don't persist).
    """
    scale = bench_scale() if scale is None else scale
    nums = set(matrices) if matrices is not None else None
    records: List[BenchRecord] = []
    for spec in SUITE:
        if nums is not None and spec.number not in nums:
            continue
        records.extend(
            run_gpu_matrix(spec, scale, precision, formats, device, mrows, seed)
        )
    result = GpuSuiteResult(records=records, scale=scale, precision=precision)
    if trajectory is None:
        trajectory = os.environ.get(TRAJECTORY_ENV) or None
    if trajectory:
        append_trajectory(result, trajectory)
    return result


def trajectory_entry(result: GpuSuiteResult) -> Dict:
    """One ``BENCH_spmv.json`` entry summarising a suite sweep.

    Per format: mean/min/max GFLOPS over the non-OOM records plus the
    suite means of the derived metrics (coalescing, L2 hit rate, DRAM
    bytes per nonzero) — the quantities future PRs regress against.
    """
    from repro.ocl.executor import executor_mode

    by_fmt: Dict[str, List[BenchRecord]] = {}
    for r in result.records:
        by_fmt.setdefault(r.fmt, []).append(r)
    formats = {}
    for fmt, recs in sorted(by_fmt.items()):
        ok = [r for r in recs if not r.oom and r.gflops is not None]
        entry = {"matrices": len(recs), "oom": sum(r.oom for r in recs)}
        if ok:
            gf = [r.gflops for r in ok]
            entry.update(
                gflops_mean=sum(gf) / len(gf),
                gflops_min=min(gf),
                gflops_max=max(gf),
            )
            for key in ("coalescing", "l2_hit_rate", "dram_bytes_per_nnz",
                        "transactions_per_nnz", "roofline_efficiency"):
                vals = [r.extra[key] for r in ok if key in r.extra]
                if vals:
                    entry[f"{key}_mean"] = sum(vals) / len(vals)
        formats[fmt] = entry
    return {
        "schema": TRAJECTORY_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": result.scale,
        "precision": result.precision,
        "executor": executor_mode(),
        "formats": formats,
    }


def append_trajectory(result: GpuSuiteResult,
                      path: Union[str, Path]) -> Path:
    """Append one sweep's :func:`trajectory_entry` to ``path``.

    The file holds ``{"schema": ..., "entries": [...]}``; it is created
    on first use and appended to afterwards, so the entry list *is* the
    benchmark trajectory across commits.
    """
    path = Path(path)
    payload = {"schema": TRAJECTORY_SCHEMA, "entries": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict) and isinstance(
                existing.get("entries"), list):
            payload = existing
    payload["entries"].append(trajectory_entry(result))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


@dataclass
class CpuComparison:
    """CPU baselines + CRSD GPU time for one matrix (Fig. 11/12 rows)."""

    matrix_number: int
    matrix_name: str
    precision: str
    crsd_gpu_seconds: float
    csr_cpu_1thr_seconds: float
    csr_cpu_8thr_seconds: float
    dia_cpu_seconds: Optional[float]   # None if DIA host slab is absurd

    @property
    def speedup_vs_csr_1thr(self) -> float:
        return self.csr_cpu_1thr_seconds / self.crsd_gpu_seconds

    @property
    def speedup_vs_csr_8thr(self) -> float:
        return self.csr_cpu_8thr_seconds / self.crsd_gpu_seconds

    @property
    def speedup_vs_dia_1thr(self) -> Optional[float]:
        if self.dia_cpu_seconds is None:
            return None
        return self.dia_cpu_seconds / self.crsd_gpu_seconds


def run_cpu_matrix(
    spec: MatrixSpec,
    scale: float,
    precision: str,
    machine: CPUSpec = XEON_X5550_2S,
    device: DeviceSpec = TESLA_C2050,
    mrows: int = DEFAULT_MROWS,
    seed: int = 0,
) -> CpuComparison:
    """CPU CSR (1/8 threads) and DIA (serial) vs CRSD on the GPU."""
    scale = effective_scale(spec, scale)
    coo = spec.generate(scale=scale, seed=seed)
    rng = np.random.default_rng(seed + 17)
    x = rng.standard_normal(coo.ncols)
    ref = coo.matvec(x)
    refscale = max(1.0, float(np.abs(ref).max()))

    dev = scaled_device(scale, device)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=mrows, wavefront_size=compatible_wavefront(mrows)
    )
    gpu = CrsdSpMV(crsd, device=dev, precision=precision)
    run = gpu.run(x)
    assert float(np.abs(run.y - ref).max()) / refscale < 1e-2
    launches = 2 if crsd.num_scatter_rows else 1
    gpu_secs = predict_gpu_time(run.trace, dev, precision, launches,
                                size_scale=scale).total

    csr = CSRMatrix.from_coo(coo)
    res1 = CpuCsrSpMV(csr, machine=machine, precision=precision, threads=1).run(x)
    res8 = CpuCsrSpMV(csr, machine=machine, precision=precision, threads=8).run(x)
    assert float(np.abs(res1.y - ref).max()) / refscale < 1e-8

    dia_secs = None
    dia = DIAMatrix.from_coo(coo)
    resd = CpuDiaSpMV(dia, machine=machine, precision=precision).run(x)
    assert float(np.abs(resd.y - ref).max()) / refscale < 1e-8
    dia_secs = resd.seconds

    return CpuComparison(
        matrix_number=spec.number,
        matrix_name=spec.name,
        precision=precision,
        crsd_gpu_seconds=gpu_secs,
        csr_cpu_1thr_seconds=res1.seconds,
        csr_cpu_8thr_seconds=res8.seconds,
        dia_cpu_seconds=dia_secs,
    )

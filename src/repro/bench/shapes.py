"""Qualitative shape assertions for the reproduction.

Absolute GFLOPS cannot match the authors' testbed; the *shape* claims
can and must: who wins on which matrices, by roughly what factor, and
where the crossovers fall.  These helpers express the paper's claims
as inequalities with generous tolerance bands; the per-figure
benchmark files apply them.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.runner import GpuSuiteResult


class ShapeViolation(AssertionError):
    """A qualitative claim of the paper failed to reproduce."""


def crsd_beats(result: GpuSuiteResult, matrix_number: int, baseline: str,
               at_least: float = 1.0, at_most: Optional[float] = None) -> float:
    """Assert CRSD's speedup over ``baseline`` on one matrix lies in
    ``[at_least, at_most]``; returns the speedup."""
    recs = result.by_matrix(matrix_number)
    crsd, base = recs.get("crsd"), recs.get(baseline)
    if crsd is None or crsd.oom:
        raise ShapeViolation(f"CRSD missing/OOM on matrix {matrix_number}")
    if base is None or base.oom:
        raise ShapeViolation(f"{baseline} missing/OOM on matrix {matrix_number}")
    s = base.seconds / crsd.seconds
    if s < at_least:
        raise ShapeViolation(
            f"matrix {matrix_number} ({crsd.matrix_name}): CRSD/{baseline} "
            f"speedup {s:.2f} < required {at_least:.2f}"
        )
    if at_most is not None and s > at_most:
        raise ShapeViolation(
            f"matrix {matrix_number} ({crsd.matrix_name}): CRSD/{baseline} "
            f"speedup {s:.2f} > plausible {at_most:.2f}"
        )
    return s


def baseline_beats_crsd(result: GpuSuiteResult, matrix_number: int,
                        baseline: str) -> float:
    """Assert the baseline outperforms CRSD (the wang3/wang4 case);
    returns the baseline's advantage factor."""
    recs = result.by_matrix(matrix_number)
    crsd, base = recs.get("crsd"), recs.get(baseline)
    if crsd is None or base is None or crsd.oom or base.oom:
        raise ShapeViolation(f"missing records on matrix {matrix_number}")
    adv = crsd.seconds / base.seconds
    if adv <= 1.0:
        raise ShapeViolation(
            f"matrix {matrix_number} ({crsd.matrix_name}): expected "
            f"{baseline} to beat CRSD, but CRSD/{baseline} = {1/adv:.2f}"
        )
    return adv


def is_oom(result: GpuSuiteResult, matrix_number: int, fmt: str) -> bool:
    """Did the format fail device-memory allocation on this matrix?"""
    rec = result.by_matrix(matrix_number).get(fmt)
    return bool(rec and rec.oom)


def assert_band(value: float, lo: float, hi: float, what: str) -> None:
    """Assert ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ShapeViolation(f"{what} = {value:.2f} outside [{lo}, {hi}]")

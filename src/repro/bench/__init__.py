"""Benchmark harness: one entry point per paper table/figure.

:mod:`repro.bench.runner` executes the format kernels over the suite
(functionally, on the simulated device), verifies every result against
the reference SpMV, and converts traces to time through the cost
model.  :mod:`repro.bench.report` renders Fig.-7-style GFLOPS tables
and speedup series; :mod:`repro.bench.shapes` holds the qualitative
assertions ("who wins, by roughly what factor") that the benchmark
tests check instead of absolute numbers.

Scaling: benchmarks run the suite at a reduced ``scale`` (structure
preserved); the device's memory capacity and fixed launch overhead are
scaled by the same factor so *relative* results match the full-size
machine balance.  Set ``REPRO_BENCH_SCALE`` to override.
"""

from repro.bench.runner import (
    BenchRecord,
    GpuSuiteResult,
    bench_scale,
    run_gpu_matrix,
    run_gpu_suite,
    run_cpu_matrix,
    scaled_device,
)
from repro.bench.report import gflops_table, speedup_table, render_records
from repro.bench import shapes

__all__ = [
    "BenchRecord",
    "GpuSuiteResult",
    "bench_scale",
    "run_gpu_matrix",
    "run_gpu_suite",
    "run_cpu_matrix",
    "scaled_device",
    "gflops_table",
    "speedup_table",
    "render_records",
    "shapes",
]

"""Rendering of benchmark results as the paper's tables/series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.runner import BenchRecord, GpuSuiteResult


def gflops_table(result: GpuSuiteResult, formats: Sequence[str]) -> str:
    """Fig. 7/8-style table: one row per matrix, one GFLOPS column per
    format ('OOM' where the format did not fit device memory)."""
    lines = [
        f"GFLOPS on simulated Tesla C2050, precision={result.precision}, "
        f"scale={result.scale}",
        _row(["#", "matrix"] + list(formats)),
        _row(["--"] * (2 + len(formats))),
    ]
    numbers = sorted({r.matrix_number for r in result.records})
    for num in numbers:
        recs = result.by_matrix(num)
        name = next(iter(recs.values())).matrix_name
        cells = [str(num), name]
        for fmt in formats:
            r = recs.get(fmt)
            if r is None:
                cells.append("-")
            elif r.oom:
                cells.append("OOM")
            else:
                cells.append(f"{r.gflops:.2f}")
        lines.append(_row(cells))
    return "\n".join(lines)


def speedup_table(result: GpuSuiteResult, baselines: Sequence[str]) -> str:
    """Fig. 9/10-style table: CRSD speedup over each baseline format."""
    lines = [
        f"CRSD speedup, precision={result.precision}, scale={result.scale}",
        _row(["#", "matrix"] + [f"CRSD/{b.upper()}" for b in baselines]),
        _row(["--"] * (2 + len(baselines))),
    ]
    numbers = sorted({r.matrix_number for r in result.records})
    for num in numbers:
        recs = result.by_matrix(num)
        crsd = recs.get("crsd")
        if crsd is None or crsd.oom:
            continue
        cells = [str(num), crsd.matrix_name]
        for b in baselines:
            r = recs.get(b)
            if r is None or r.oom:
                cells.append("OOM")
            else:
                cells.append(f"{r.seconds / crsd.seconds:.2f}")
        lines.append(_row(cells))
    return "\n".join(lines)


def speedup_series(result: GpuSuiteResult, baseline: str) -> Dict[int, float]:
    """CRSD-over-baseline speedup per matrix number (OOM rows skipped)."""
    out: Dict[int, float] = {}
    for num in sorted({r.matrix_number for r in result.records}):
        recs = result.by_matrix(num)
        crsd, base = recs.get("crsd"), recs.get(baseline)
        if crsd and base and not crsd.oom and not base.oom:
            out[num] = base.seconds / crsd.seconds
    return out


def summarize_series(series: Dict[int, float]) -> Dict[str, float]:
    """max / average of a speedup series (the numbers the paper quotes)."""
    vals = list(series.values())
    if not vals:
        return {"max": float("nan"), "avg": float("nan")}
    return {"max": max(vals), "avg": sum(vals) / len(vals)}


def render_records(records: Iterable[BenchRecord]) -> str:
    """Flat per-record dump (debugging aid)."""
    lines = [_row(["#", "matrix", "fmt", "prec", "GFLOPS", "coal", "barriers"])]
    for r in records:
        lines.append(
            _row(
                [
                    str(r.matrix_number),
                    r.matrix_name,
                    r.fmt,
                    r.precision,
                    "OOM" if r.oom else f"{r.gflops:.2f}",
                    f"{r.extra.get('coalescing', 0):.2f}",
                    f"{r.extra.get('barriers', 0):.0f}",
                ]
            )
        )
    return "\n".join(lines)


def _row(cells: List[str]) -> str:
    widths = [3, 14] + [10] * (len(cells) - 2)
    out = []
    for cell, w in zip(cells, widths):
        out.append(("-" * w) if cell == "--" else cell.ljust(w))
    return "  ".join(out)

"""Figure rendering: ASCII bar charts and CSV export.

The paper's Figs. 7-12 are grouped bar charts; these helpers render
the reproduced data as terminal-friendly charts (written alongside the
tables in ``benchmarks/results/``) and as CSV for external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from repro.bench.runner import GpuSuiteResult

#: glyph per format, mirroring the figures' legend order
_GLYPHS = {"dia": "D", "ell": "E", "csr": "C", "hyb": "H", "crsd": "*"}


def ascii_bar_chart(
    series: Mapping[str, float],
    width: int = 56,
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render one labelled bar per entry, scaled to the max value."""
    if not series:
        return title
    peak = max(v for v in series.values() if v is not None) or 1.0
    label_w = max(len(k) for k in series)
    lines = [title] if title else []
    for name, value in series.items():
        if value is None:
            lines.append(f"{name:<{label_w}} | {'(OOM)'}")
            continue
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{name:<{label_w}} | {bar} {fmt.format(value)}")
    return "\n".join(lines)


def gflops_chart(result: GpuSuiteResult, matrix_number: int,
                 formats: Sequence[str]) -> str:
    """One matrix's Fig.-7-style format comparison as a bar chart."""
    recs = result.by_matrix(matrix_number)
    if not recs:
        raise KeyError(f"no records for matrix {matrix_number}")
    name = next(iter(recs.values())).matrix_name
    series = {
        fmt: (None if recs[fmt].oom else recs[fmt].gflops)
        for fmt in formats
        if fmt in recs
    }
    return ascii_bar_chart(series, title=f"{name} ({result.precision}) GFLOPS")


def suite_chart(result: GpuSuiteResult, formats: Sequence[str]) -> str:
    """The whole figure: one block per matrix."""
    blocks = []
    for num in sorted({r.matrix_number for r in result.records}):
        blocks.append(gflops_chart(result, num, formats))
    return "\n\n".join(blocks)


def write_csv(result: GpuSuiteResult, path: Union[str, Path],
              formats: Optional[Sequence[str]] = None) -> Path:
    """Dump a suite result as CSV (one row per matrix, one column per
    format; empty cell = OOM)."""
    path = Path(path)
    numbers = sorted({r.matrix_number for r in result.records})
    formats = list(formats or sorted({r.fmt for r in result.records}))
    with open(path, "w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["number", "matrix", "precision"] + list(formats))
        for num in numbers:
            recs = result.by_matrix(num)
            name = next(iter(recs.values())).matrix_name
            row = [num, name, result.precision]
            for fmt in formats:
                r = recs.get(fmt)
                row.append("" if (r is None or r.oom) else f"{r.gflops:.4f}")
            w.writerow(row)
    return path


def read_back_csv(path: Union[str, Path]) -> Dict[str, Dict[str, float]]:
    """Load a CSV written by :func:`write_csv` (used by tests and by
    external plotting scripts)."""
    out: Dict[str, Dict[str, float]] = {}
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            name = row["matrix"]
            out[name] = {
                k: float(v)
                for k, v in row.items()
                if k not in ("number", "matrix", "precision") and v
            }
    return out

"""CRSD SpMV reproduction (Sun et al., ICPP 2011).

``repro`` implements the paper's contribution -- the CRSD sparse storage
format with runtime codelet generation -- together with every substrate
its evaluation depends on:

- ``repro.formats``      -- COO/CSR/DIA/ELL/HYB/BCSR storage formats
- ``repro.core``         -- diagonal patterns, row segments, CRSD itself
- ``repro.codegen``      -- the runtime code generator (OpenCL C + Python)
- ``repro.ocl``          -- a simulated OpenCL device and runtime
- ``repro.gpu_kernels``  -- Bell & Garland (2009) style baseline kernels
- ``repro.perf``         -- roofline/transaction performance model
- ``repro.cpu``          -- MKL-like CPU baselines and machine model
- ``repro.matrices``     -- the 23-matrix evaluation suite (synthetic)
- ``repro.bench``        -- the per-figure/table benchmark harness
- ``repro.solvers``      -- CG/BiCGSTAB/Jacobi over the SpMV kernels
- ``repro.hybrid``       -- PCIe transfers + CPU+GPU hybrid SpMV
- ``repro.obs``          -- spans, metric registries, profile exporters
- ``repro.resilience``   -- fault injection, retries, fallback ladder
- ``repro.serve``        -- plan cache, micro-batching, admission control
- ``repro.cluster``      -- sharded multi-device serving on certified plans
- ``repro.cli``          -- ``python -m repro info/bench/serve/loadgen/...``

The package root doubles as the facade (:mod:`repro.api`)::

    import repro

    run = repro.spmv(A, x, format="auto")   # -> SpMVRun (y, trace, metrics)
    runner = repro.build(A, format="crsd")  # -> prepared kernel runner
    report = repro.profile(A)               # -> ProfileReport
    session = repro.serve_session()         # -> ServeEngine (request stream)

Heavy submodules load lazily (PEP 562), so ``import repro`` stays cheap
and instrumentation-free code paths never pay for the observation
layer.
"""

from repro._version import __version__

__all__ = [
    "__version__",
    # facade verbs
    "spmv",
    "build",
    "profile",
    "auto_format",
    # key public classes
    "CRSDMatrix",
    "COOMatrix",
    "CrsdSpMV",
    "DeviceSpec",
    "SpMVRun",
    # observation entry points
    "observe",
    "ProfileReport",
    # resilience entry points
    "Policy",
    "ResilienceExhausted",
    "FaultInjector",
    "InputValidationError",
    # serving entry points
    "serve_session",
    "Engine",
    "PlanCache",
    "ServeOverloaded",
    "ClusterEngine",
    "ReproDeprecationWarning",
    "fingerprint",
]

#: lazily-resolved public attribute -> defining module
_LAZY = {
    "spmv": "repro.api",
    "build": "repro.api",
    "profile": "repro.api",
    "auto_format": "repro.api",
    "CRSDMatrix": "repro.core.crsd",
    "COOMatrix": "repro.formats.coo",
    "CrsdSpMV": "repro.gpu_kernels",
    "DeviceSpec": "repro.ocl.device",
    "SpMVRun": "repro.gpu_kernels.base",
    "observe": "repro.obs.recorder",
    "ProfileReport": "repro.obs.report",
    "Policy": "repro.resilience.policy",
    "ResilienceExhausted": "repro.resilience.policy",
    "FaultInjector": "repro.resilience.faults",
    "InputValidationError": "repro.validation",
    "serve_session": "repro.serve",
    "Engine": "repro.serve.engine",
    "PlanCache": "repro.serve.cache",
    "ServeOverloaded": "repro.serve.admission",
    "ClusterEngine": "repro.cluster",
    "ReproDeprecationWarning": "repro.validation",
    "fingerprint": "repro.core.serialize",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        value = getattr(importlib.import_module(_LAZY[name]), name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

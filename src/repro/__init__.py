"""CRSD SpMV reproduction (Sun et al., ICPP 2011).

``repro`` implements the paper's contribution -- the CRSD sparse storage
format with runtime codelet generation -- together with every substrate
its evaluation depends on:

- ``repro.formats``      -- COO/CSR/DIA/ELL/HYB/BCSR storage formats
- ``repro.core``         -- diagonal patterns, row segments, CRSD itself
- ``repro.codegen``      -- the runtime code generator (OpenCL C + Python)
- ``repro.ocl``          -- a simulated OpenCL device and runtime
- ``repro.gpu_kernels``  -- Bell & Garland (2009) style baseline kernels
- ``repro.perf``         -- roofline/transaction performance model
- ``repro.cpu``          -- MKL-like CPU baselines and machine model
- ``repro.matrices``     -- the 23-matrix evaluation suite (synthetic)
- ``repro.bench``        -- the per-figure/table benchmark harness
- ``repro.solvers``      -- CG/BiCGSTAB/Jacobi over the SpMV kernels
- ``repro.hybrid``       -- PCIe transfers + CPU+GPU hybrid SpMV
- ``repro.cli``          -- ``python -m repro info/bench/codegen/convert/tune``
"""

from repro._version import __version__

__all__ = ["__version__"]

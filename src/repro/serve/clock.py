"""The serving layer's deterministic simulated clock.

The whole serving stack — arrivals, batching delays, service times,
deadlines — runs on *simulated* seconds, the same philosophy as the
resilience layer's backoff accounting: time is a cost-model quantity
that is summed, never slept.  No wall clock is ever consulted, so a
fixed-seed load-generation run is byte-reproducible.

:class:`SimulatedClock` is a monotonic cursor; the serving engine's
discrete-event loop advances it to the next interesting instant
(arrival, batch-delay expiry, device-free).  :data:`FOREVER` is the
"no such event" sentinel the loop compares against.
"""

from __future__ import annotations

__all__ = ["SimulatedClock", "FOREVER"]

#: sentinel event time meaning "never" (compares greater than any real
#: simulated instant)
FOREVER = float("inf")


class SimulatedClock:
    """A monotonic simulated-time cursor (seconds).

    ``advance_to`` moves the cursor forward; moving it backwards is a
    programming error in the event loop and raises immediately rather
    than silently reordering history.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current simulated time, in seconds."""
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the cursor to ``t`` (must not be in the past)."""
        if t < self._now:
            raise ValueError(
                f"simulated clock cannot run backwards: now={self._now!r}, "
                f"requested {t!r}")
        self._now = float(t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the cursor forward by ``dt`` seconds (``dt >= 0``)."""
        if dt < 0:
            raise ValueError(f"negative time step {dt!r}")
        return self.advance_to(self._now + dt)

    def __repr__(self) -> str:
        return f"<SimulatedClock t={self._now:.6f}s>"

"""Serving subsystem: plan cache, micro-batching, admission control.

The rest of the library answers "how fast is one SpMV?"; this package
answers "how does a *stream* of SpMV requests behave?".  Prepared
artifacts (CRSD builds, generated codelets, autotune results) are kept
in a bounded LRU :class:`PlanCache` keyed by content fingerprint;
concurrent same-matrix requests coalesce into single
:class:`~repro.gpu_kernels.crsd_runner.CrsdSpMM` launches through the
:class:`MicroBatcher`; a bounded queue with explicit overflow policy
(:class:`AdmissionController`) provides backpressure.  Everything runs
on simulated time, so serving experiments are deterministic and
byte-reproducible per seed.

Entry points::

    session = repro.serve_session(max_batch=16)
    session.submit(A, x1); session.submit(A, x2)
    results = session.run()

    # offline load generation (also: `repro loadgen` on the CLI)
    from repro.serve import LoadConfig, run_loadgen
    report = run_loadgen(LoadConfig(seed=7))
"""

from __future__ import annotations

from typing import Optional

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.serve.admission import (
    OVERFLOW_POLICIES,
    AdmissionController,
    AdmissionPolicy,
    ServeOverloaded,
)
from repro.serve.batcher import BatchConfig, MicroBatcher, Request
from repro.serve.cache import (
    CacheStats,
    PlanCache,
    PlanEntry,
    default_cache,
    reset_default_cache,
)
from repro.serve.clock import FOREVER, SimulatedClock
from repro.serve.engine import ServedResult, ServeEngine
from repro.serve.loadgen import (
    LoadConfig,
    LoadReport,
    append_serve_trajectory,
    report_json,
    run_loadgen,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BatchConfig",
    "CacheStats",
    "FOREVER",
    "LoadConfig",
    "LoadReport",
    "MicroBatcher",
    "OVERFLOW_POLICIES",
    "PlanCache",
    "PlanEntry",
    "Request",
    "ServeEngine",
    "ServeOverloaded",
    "ServedResult",
    "SimulatedClock",
    "append_serve_trajectory",
    "default_cache",
    "report_json",
    "reset_default_cache",
    "run_loadgen",
    "serve_session",
]


def serve_session(
    *,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    mrows: int = 128,
    use_local_memory: bool = True,
    max_batch: int = 16,
    max_delay_s: float = 200e-6,
    min_spmm: int = 2,
    max_queue_depth: int = 64,
    overflow: str = "reject-new",
    cache: Optional[PlanCache] = None,
    prepare_cost_s: float = 0.0,
    size_scale: float = 1.0,
    keep_y: bool = True,
) -> ServeEngine:
    """Open a serving session (the ``repro.serve_session`` facade).

    Flattens the batching and admission knobs into keywords and returns
    a ready :class:`ServeEngine`: ``submit()`` requests, ``run()`` the
    stream, read ``stats()``.  ``cache`` defaults to a session-private
    :class:`PlanCache`; pass :func:`default_cache` 's return to share
    prepared artifacts with ``repro.auto_format`` / ``repro tune``.
    """
    return ServeEngine(
        device=device,
        precision=precision,
        mrows=mrows,
        use_local_memory=use_local_memory,
        batch=BatchConfig(max_batch=max_batch, max_delay_s=max_delay_s,
                          min_spmm=min_spmm),
        admission=AdmissionPolicy(max_queue_depth=max_queue_depth,
                                  overflow=overflow),
        cache=cache,
        prepare_cost_s=prepare_cost_s,
        size_scale=size_scale,
        keep_y=keep_y,
    )

"""Serving subsystem: plan cache, micro-batching, admission control.

The rest of the library answers "how fast is one SpMV?"; this package
answers "how does a *stream* of SpMV requests behave?".  Prepared
artifacts (CRSD builds, generated codelets, autotune results) are kept
in a bounded LRU :class:`PlanCache` keyed by content fingerprint;
concurrent same-matrix requests coalesce into single
:class:`~repro.gpu_kernels.crsd_runner.CrsdSpMM` launches through the
:class:`MicroBatcher`; a bounded queue with explicit overflow policy
(:class:`AdmissionController`) provides backpressure.  Everything runs
on simulated time, so serving experiments are deterministic and
byte-reproducible per seed.

Entry points::

    session = repro.serve_session(max_batch=16)
    session.submit(A, x1); session.submit(A, x2)
    results = session.run()

    # the same surface, sharded over four simulated devices
    cluster = repro.serve_session(cluster=4, split_threshold_rows=20_000)
    cluster.submit(A, x1)
    results = cluster.run()

    # offline load generation (also: `repro loadgen` on the CLI)
    from repro.serve import LoadConfig, run_loadgen
    report = run_loadgen(LoadConfig(seed=7))

Both session flavours satisfy the :class:`~repro.serve.engine.Engine`
protocol — ``submit`` / ``run(until=...)`` / ``stats`` — so anything
written against it (:func:`run_loadgen` included) works unchanged on
one device or a cluster.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.serve.admission import (
    CLUSTER_OVERFLOW_POLICIES,
    OVERFLOW_POLICIES,
    AdmissionController,
    AdmissionPolicy,
    ClusterAdmission,
    ClusterAdmissionPolicy,
    ServeOverloaded,
)
from repro.serve.batcher import BatchConfig, MicroBatcher, Request
from repro.serve.cache import (
    CacheStats,
    PlanCache,
    PlanEntry,
    ShardCertificateStore,
    default_cache,
    reset_default_cache,
)
from repro.serve.clock import FOREVER, SimulatedClock
from repro.serve.engine import Engine, ServedResult, ServeEngine
from repro.serve.loadgen import (
    LoadConfig,
    LoadReport,
    append_serve_trajectory,
    chaos_trajectory_path,
    cluster_trajectory_path,
    report_json,
    run_loadgen,
    trajectory_path,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BatchConfig",
    "CLUSTER_OVERFLOW_POLICIES",
    "CacheStats",
    "ClusterAdmission",
    "ClusterAdmissionPolicy",
    "Engine",
    "FOREVER",
    "LoadConfig",
    "LoadReport",
    "MicroBatcher",
    "OVERFLOW_POLICIES",
    "PlanCache",
    "PlanEntry",
    "Request",
    "ServeEngine",
    "ServeOverloaded",
    "ServedResult",
    "ShardCertificateStore",
    "SimulatedClock",
    "append_serve_trajectory",
    "chaos_trajectory_path",
    "cluster_trajectory_path",
    "default_cache",
    "report_json",
    "reset_default_cache",
    "run_loadgen",
    "serve_session",
    "trajectory_path",
]


def serve_session(
    *,
    cluster: Optional[int] = None,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    mrows: int = 128,
    use_local_memory: bool = True,
    max_batch: int = 16,
    max_delay_s: float = 200e-6,
    min_spmm: int = 2,
    max_queue_depth: int = 64,
    overflow: str = "reject-new",
    cache: Optional[PlanCache] = None,
    prepare_cost_s: float = 0.0,
    size_scale: float = 1.0,
    keep_y: Union[bool, str] = True,
    split_threshold_rows: Optional[int] = None,
    split_ways: Optional[int] = None,
    cache_capacity: int = 64,
    replicas: int = 1,
    hedge=None,
    cluster_admission=None,
) -> Engine:
    """Open a serving session (the ``repro.serve_session`` facade).

    Flattens the batching and admission knobs into keywords and returns
    a ready :class:`Engine`: ``submit()`` requests, ``run()`` the
    stream, read ``stats()``.  With ``cluster=N`` the session is a
    :class:`~repro.cluster.engine.ClusterEngine` over ``N`` simulated
    devices — same submit/run/stats surface, plus consistent-hash
    placement, (when ``split_threshold_rows`` is set) certified
    row-block splitting of large matrices across devices, and the
    resilience knobs: ``replicas=R`` replicated placement, ``hedge=``
    a :class:`~repro.cluster.resilience.HedgePolicy` for hedged
    retries, ``cluster_admission=`` a :class:`ClusterAdmissionPolicy`
    for the cluster-wide front door.  Without ``cluster``, a single
    :class:`ServeEngine`.

    ``cache`` defaults to a session-private :class:`PlanCache`; pass
    :func:`default_cache` 's return to share prepared artifacts with
    ``repro.auto_format`` / ``repro tune``.  Cluster sessions build
    one per-device cache each (capacity ``cache_capacity``) over a
    shared certificate store, so ``cache`` is single-device only.
    """
    batch = BatchConfig(max_batch=max_batch, max_delay_s=max_delay_s,
                        min_spmm=min_spmm)
    admission = AdmissionPolicy(max_queue_depth=max_queue_depth,
                                overflow=overflow)
    if cluster is not None:
        if cluster < 1:
            raise ValueError(f"cluster must be >= 1 device, got {cluster}")
        if cache is not None:
            raise ValueError(
                "cluster sessions build one PlanCache per device over a "
                "shared certificate store; cache= applies to "
                "single-device sessions only (size it via cache_capacity)")
        from repro.cluster import ClusterEngine

        return ClusterEngine(
            cluster,
            device=device,
            precision=precision,
            mrows=mrows,
            use_local_memory=use_local_memory,
            batch=batch,
            admission=admission,
            prepare_cost_s=prepare_cost_s,
            size_scale=size_scale,
            keep_y=keep_y,
            split_threshold_rows=split_threshold_rows,
            split_ways=split_ways,
            cache_capacity=cache_capacity,
            replicas=replicas,
            hedge=hedge,
            cluster_admission=cluster_admission,
        )
    if split_threshold_rows is not None or split_ways is not None:
        raise ValueError(
            "split_threshold_rows/split_ways shard requests across "
            "cluster devices; pass cluster=N to open a cluster session")
    if replicas != 1 or hedge is not None or cluster_admission is not None:
        raise ValueError(
            "replicas/hedge/cluster_admission are cluster resilience "
            "knobs; pass cluster=N to open a cluster session")
    return ServeEngine(
        device=device,
        precision=precision,
        mrows=mrows,
        use_local_memory=use_local_memory,
        batch=batch,
        admission=admission,
        cache=cache,
        prepare_cost_s=prepare_cost_s,
        size_scale=size_scale,
        keep_y=keep_y,
    )

"""Admission control: bounded queues, backpressure, deadlines.

An open-loop arrival process does not slow down when the device falls
behind, so the queue in front of the MicroBatcher must be bounded and
the overflow policy explicit.  Two classic policies are provided:

- ``reject-new`` (default): an arrival finding the queue full is
  rejected with the typed :class:`ServeOverloaded` — callers see
  backpressure immediately, queued work keeps its place.
- ``drop-oldest``: the arrival is admitted and the *oldest* queued
  request is shed instead — freshest-work-wins, the right shape for
  latency-sensitive traffic where a stale request is worthless anyway.

Deadline accounting is part of admission too: a queued request whose
deadline has already expired by the time the batcher would launch it is
dropped (``expired``) rather than wasting a launch, and every served
request records whether it met its deadline.

The cluster adds a second, *front-door* tier ahead of the per-device
queues: :class:`ClusterAdmission` bounds cluster-wide in-flight work,
keeps per-tenant fairness counters, and on overflow either rejects the
arrival outright (``reject-new``) or sheds it sideways to the
least-loaded replica of its pattern (``shed-to-replica``) — load is
redirected, not dropped, as long as the tenant is within its fair
share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["AdmissionPolicy", "AdmissionController", "ServeOverloaded",
           "OVERFLOW_POLICIES", "ClusterAdmissionPolicy",
           "ClusterAdmission", "CLUSTER_OVERFLOW_POLICIES"]

#: recognised queue-overflow policies
OVERFLOW_POLICIES = ("reject-new", "drop-oldest")

#: recognised cluster front-door overflow policies
CLUSTER_OVERFLOW_POLICIES = ("reject-new", "shed-to-replica")


class ServeOverloaded(RuntimeError):
    """The serving queue is full and the overflow policy rejected the
    request.  Carries the queue state so callers can implement their
    own backoff."""

    def __init__(self, message: str, *, depth: int, max_depth: int):
        super().__init__(message)
        self.depth = depth
        self.max_depth = max_depth


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue bounds and overflow behaviour for one serving session.

    Parameters
    ----------
    max_queue_depth:
        Maximum requests waiting (being executed does not count).
    overflow:
        ``"reject-new"`` or ``"drop-oldest"`` (see module docstring).
    """

    max_queue_depth: int = 64
    overflow: str = "reject-new"

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.overflow!r}; expected one "
                f"of {OVERFLOW_POLICIES}")


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` and keeps the counters.

    The controller itself is queue-agnostic: the engine asks it to
    judge each arrival against the current depth and records the
    outcome; the actual deque lives in the MicroBatcher.
    """

    def __init__(self, policy: AdmissionPolicy):
        self.policy = policy
        self.accepted = 0
        self.rejected = 0
        self.shed = 0        # drop-oldest victims
        self.expired = 0     # dropped at launch time, deadline passed
        self.deadline_misses = 0  # served, but after their deadline

    def admit(self, depth: int) -> str:
        """Judge one arrival against the current queue ``depth``.

        Returns ``"accept"``, ``"reject"`` (count it, caller raises or
        records :class:`ServeOverloaded`), or ``"shed-oldest"`` (accept
        after evicting the oldest queued request).
        """
        if depth < self.policy.max_queue_depth:
            self.accepted += 1
            return "accept"
        if self.policy.overflow == "drop-oldest":
            self.accepted += 1
            self.shed += 1
            return "shed-oldest"
        self.rejected += 1
        return "reject"

    def overloaded_error(self, depth: int) -> ServeOverloaded:
        """The typed rejection for a ``"reject"`` verdict."""
        return ServeOverloaded(
            f"serving queue full ({depth}/{self.policy.max_queue_depth} "
            "requests waiting); retry later or widen the policy",
            depth=depth, max_depth=self.policy.max_queue_depth)

    def record_expired(self, n: int = 1) -> None:
        """Count requests dropped unserved because their deadline
        passed while they were still queued."""
        self.expired += n

    def record_deadline_miss(self, n: int = 1) -> None:
        """Count requests served after their deadline."""
        self.deadline_misses += n

    def to_dict(self) -> Dict[str, Any]:
        """Policy parameters and counters, JSON-safe (for reports)."""
        return {
            "max_queue_depth": self.policy.max_queue_depth,
            "overflow": self.policy.overflow,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "expired": self.expired,
            "deadline_misses": self.deadline_misses,
        }


@dataclass(frozen=True)
class ClusterAdmissionPolicy:
    """The cluster front door's bounds and overflow behaviour.

    Parameters
    ----------
    max_inflight:
        Maximum requests dispatched but not yet terminal across the
        whole cluster (per-device queues still apply their own
        :class:`AdmissionPolicy` underneath).
    overflow:
        ``"reject-new"`` — an arrival over the bound is rejected at the
        front door; ``"shed-to-replica"`` — the arrival is admitted but
        routed to the least-loaded live replica of its pattern instead
        of the deterministic read-balance choice (load redirection, not
        loss).
    fairness:
        When true, a tenant already holding at least its fair share
        (``max_inflight / active tenants``) of in-flight work is
        rejected at overflow even under ``shed-to-replica`` — one hot
        tenant cannot starve the rest.
    """

    max_inflight: int = 256
    overflow: str = "reject-new"
    fairness: bool = True

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.overflow not in CLUSTER_OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown cluster overflow policy {self.overflow!r}; "
                f"expected one of {CLUSTER_OVERFLOW_POLICIES}")


class ClusterAdmission:
    """The cluster-level front door ahead of the per-device queues.

    Judges every cluster arrival against the cluster-wide in-flight
    bound and keeps per-tenant fairness counters (a *tenant* is one
    matrix identity — the combined fingerprint — so value-variant
    tenants of one pattern are counted separately).  The engine calls
    :meth:`admit` at the arrival instant and :meth:`release` when the
    request reaches any terminal state.
    """

    def __init__(self, policy: ClusterAdmissionPolicy):
        self.policy = policy
        self.accepted = 0
        self.rejected = 0
        self.shed_to_replica = 0
        #: tenant -> {"accepted", "rejected", "shed_to_replica",
        #: "inflight"} (insertion-ordered, hence deterministic)
        self.tenants: Dict[str, Dict[str, int]] = {}

    def _tenant(self, tenant: str) -> Dict[str, int]:
        return self.tenants.setdefault(
            tenant, {"accepted": 0, "rejected": 0,
                     "shed_to_replica": 0, "inflight": 0})

    def fair_share(self) -> float:
        """One tenant's fair share of the in-flight budget right now."""
        return self.policy.max_inflight / max(1, len(self.tenants))

    def admit(self, tenant: str, inflight: int) -> str:
        """Judge one arrival: ``"accept"``, ``"shed-to-replica"`` or
        ``"reject"``.  ``inflight`` is the cluster-wide count of
        dispatched-not-terminal requests."""
        t = self._tenant(tenant)
        if inflight < self.policy.max_inflight:
            self.accepted += 1
            t["accepted"] += 1
            t["inflight"] += 1
            return "accept"
        over_share = (self.policy.fairness
                      and t["inflight"] >= max(1.0, self.fair_share()))
        if self.policy.overflow == "shed-to-replica" and not over_share:
            self.shed_to_replica += 1
            t["shed_to_replica"] += 1
            t["inflight"] += 1
            return "shed-to-replica"
        self.rejected += 1
        t["rejected"] += 1
        return "reject"

    def release(self, tenant: str) -> None:
        """A previously admitted request of ``tenant`` reached a
        terminal state."""
        t = self.tenants.get(tenant)
        if t is not None and t["inflight"] > 0:
            t["inflight"] -= 1

    def to_dict(self) -> Dict[str, Any]:
        """Policy, totals and per-tenant counters, JSON-safe."""
        return {
            "max_inflight": self.policy.max_inflight,
            "overflow": self.policy.overflow,
            "fairness": self.policy.fairness,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed_to_replica": self.shed_to_replica,
            "tenants": len(self.tenants),
            "per_tenant": {k: dict(v) for k, v in self.tenants.items()},
        }

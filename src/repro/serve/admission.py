"""Admission control: bounded queues, backpressure, deadlines.

An open-loop arrival process does not slow down when the device falls
behind, so the queue in front of the MicroBatcher must be bounded and
the overflow policy explicit.  Two classic policies are provided:

- ``reject-new`` (default): an arrival finding the queue full is
  rejected with the typed :class:`ServeOverloaded` — callers see
  backpressure immediately, queued work keeps its place.
- ``drop-oldest``: the arrival is admitted and the *oldest* queued
  request is shed instead — freshest-work-wins, the right shape for
  latency-sensitive traffic where a stale request is worthless anyway.

Deadline accounting is part of admission too: a queued request whose
deadline has already expired by the time the batcher would launch it is
dropped (``expired``) rather than wasting a launch, and every served
request records whether it met its deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["AdmissionPolicy", "AdmissionController", "ServeOverloaded",
           "OVERFLOW_POLICIES"]

#: recognised queue-overflow policies
OVERFLOW_POLICIES = ("reject-new", "drop-oldest")


class ServeOverloaded(RuntimeError):
    """The serving queue is full and the overflow policy rejected the
    request.  Carries the queue state so callers can implement their
    own backoff."""

    def __init__(self, message: str, *, depth: int, max_depth: int):
        super().__init__(message)
        self.depth = depth
        self.max_depth = max_depth


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue bounds and overflow behaviour for one serving session.

    Parameters
    ----------
    max_queue_depth:
        Maximum requests waiting (being executed does not count).
    overflow:
        ``"reject-new"`` or ``"drop-oldest"`` (see module docstring).
    """

    max_queue_depth: int = 64
    overflow: str = "reject-new"

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.overflow!r}; expected one "
                f"of {OVERFLOW_POLICIES}")


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` and keeps the counters.

    The controller itself is queue-agnostic: the engine asks it to
    judge each arrival against the current depth and records the
    outcome; the actual deque lives in the MicroBatcher.
    """

    def __init__(self, policy: AdmissionPolicy):
        self.policy = policy
        self.accepted = 0
        self.rejected = 0
        self.shed = 0        # drop-oldest victims
        self.expired = 0     # dropped at launch time, deadline passed
        self.deadline_misses = 0  # served, but after their deadline

    def admit(self, depth: int) -> str:
        """Judge one arrival against the current queue ``depth``.

        Returns ``"accept"``, ``"reject"`` (count it, caller raises or
        records :class:`ServeOverloaded`), or ``"shed-oldest"`` (accept
        after evicting the oldest queued request).
        """
        if depth < self.policy.max_queue_depth:
            self.accepted += 1
            return "accept"
        if self.policy.overflow == "drop-oldest":
            self.accepted += 1
            self.shed += 1
            return "shed-oldest"
        self.rejected += 1
        return "reject"

    def overloaded_error(self, depth: int) -> ServeOverloaded:
        """The typed rejection for a ``"reject"`` verdict."""
        return ServeOverloaded(
            f"serving queue full ({depth}/{self.policy.max_queue_depth} "
            "requests waiting); retry later or widen the policy",
            depth=depth, max_depth=self.policy.max_queue_depth)

    def record_expired(self, n: int = 1) -> None:
        """Count requests dropped unserved because their deadline
        passed while they were still queued."""
        self.expired += n

    def record_deadline_miss(self, n: int = 1) -> None:
        """Count requests served after their deadline."""
        self.deadline_misses += n

    def to_dict(self) -> Dict[str, Any]:
        """Policy parameters and counters, JSON-safe (for reports)."""
        return {
            "max_queue_depth": self.policy.max_queue_depth,
            "overflow": self.policy.overflow,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "expired": self.expired,
            "deadline_misses": self.deadline_misses,
        }

"""Seeded load generation over the suite and the serving report.

The generator builds a deterministic open-loop arrival trace — Poisson
interarrivals, optionally grouped into synchronized bursts — over a
subset of the 23 suite matrices, plays it through a
:class:`~repro.serve.engine.ServeEngine`, and reduces the outcome to a
JSON report: latency percentiles, throughput, batch-size histogram,
cache hit rate, admission counters, and a checksum over every served
``y`` (so two byte-identical reports certify bit-identical results,
not just matching summaries).

Everything is keyed off the seed and runs on simulated time, so the
same :class:`LoadConfig` produces the same report *bytes* on every
machine — the CI ``serve-smoke`` job runs the generator twice and
``cmp``s the files.

Reports are also appended to a ``BENCH_serve.json`` trajectory
(``{"schema": ..., "entries": [...]}``, same envelope as the bench
trajectory) named by ``REPRO_SERVE_TRAJECTORY``, so serving behaviour
accumulates a comparable history across commits.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.matrices.suite23 import SUITE
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.serve.admission import AdmissionPolicy
from repro.serve.batcher import BatchConfig
from repro.serve.cache import PlanCache
from repro.serve.engine import Engine, ServeEngine, ServedResult
from repro.validation import ReproDeprecationWarning

__all__ = ["LoadConfig", "LoadReport", "run_loadgen", "report_json",
           "append_serve_trajectory", "trajectory_path",
           "cluster_trajectory_path", "chaos_trajectory_path",
           "ARRIVAL_PATTERNS"]

#: recognised arrival processes
ARRIVAL_PATTERNS = ("poisson", "burst")

#: environment variable naming the serve trajectory file (unset = no
#: persistence); the conventional file name is ``BENCH_serve.json``
TRAJECTORY_ENV = "REPRO_SERVE_TRAJECTORY"

#: environment variable naming the *cluster* trajectory file; the
#: conventional file name is ``BENCH_cluster.json``
CLUSTER_TRAJECTORY_ENV = "REPRO_CLUSTER_TRAJECTORY"

#: schema tag of the serve trajectory envelope and its entries
TRAJECTORY_SCHEMA = "repro-serve-trajectory/v1"

#: schema tag of the cluster trajectory envelope and its entries
CLUSTER_TRAJECTORY_SCHEMA = "repro-cluster-trajectory/v1"

#: environment variable naming the chaos trajectory file; the
#: conventional file name is ``BENCH_chaos.json``
CHAOS_TRAJECTORY_ENV = "REPRO_CHAOS_TRAJECTORY"

#: schema tag of the cluster-chaos trajectory envelope and its entries
CHAOS_TRAJECTORY_SCHEMA = "repro-cluster-chaos-trajectory/v1"

#: schema tag of one loadgen report
REPORT_SCHEMA = "repro-serve-report/v1"

#: default matrix subset: one representative per structural family,
#: eight matrices (the acceptance floor for the throughput criterion)
DEFAULT_MATRICES = ("crystk03", "s3dkt3m2", "ecology2", "wang3", "kim1",
                    "Lin", "nemeth22", "s80_80_50")


@dataclass(frozen=True)
class LoadConfig:
    """One reproducible load-generation run.

    Parameters
    ----------
    seed:
        Seeds arrivals, matrix choices and request vectors; the whole
        report is a pure function of this config.
    matrices:
        Suite matrix names (or numbers) requests draw from, uniformly.
    scale:
        Suite generation scale (1.0 = paper size).
    num_requests:
        Arrivals to generate.
    rate_rps:
        Mean arrival rate in requests per *simulated* second.  Batching
        only helps once the device saturates, so pick a rate above the
        per-request service rate to study it (the default is deep in
        the overloaded regime for the default suite subset).
    pattern:
        ``"poisson"`` — independent exponential interarrivals;
        ``"burst"`` — the same process but arrivals land in
        synchronized groups of ``burst_size`` (same instant), the
        pathological-friendly case for micro-batching.
    burst_size:
        Group size under ``pattern="burst"``.
    deadline_s:
        Optional per-request relative deadline (simulated seconds).
    tenants:
        Value-variants per suite matrix.  Tenant 0 is the base matrix;
        each further tenant keeps the *pattern* (so plan caches and
        certificate stores hit across tenants) but rescales the values
        with its own deterministic stream — the multi-tenant traffic
        the cluster bench drives (``matrices × tenants`` distinct
        matrices through one arrival process).
    """

    seed: int = 0
    matrices: Sequence[str] = DEFAULT_MATRICES
    scale: float = 0.05
    num_requests: int = 64
    rate_rps: float = 4e5
    pattern: str = "poisson"
    burst_size: int = 8
    deadline_s: Optional[float] = None
    precision: str = "double"
    mrows: int = 128
    device: DeviceSpec = TESLA_C2050
    use_local_memory: bool = True
    prepare_cost_s: float = 0.0
    tenants: int = 1

    def __post_init__(self):
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ValueError(
                f"unknown arrival pattern {self.pattern!r}; expected one "
                f"of {ARRIVAL_PATTERNS}")
        if self.num_requests < 1:
            raise ValueError(
                f"num_requests must be >= 1, got {self.num_requests}")
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.burst_size < 1:
            raise ValueError(
                f"burst_size must be >= 1, got {self.burst_size}")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")

    def to_dict(self) -> Dict[str, Any]:
        """The config as a JSON-safe dict (embedded in every report)."""
        return {
            "seed": self.seed,
            "matrices": list(self.matrices),
            "scale": self.scale,
            "num_requests": self.num_requests,
            "rate_rps": self.rate_rps,
            "pattern": self.pattern,
            "burst_size": self.burst_size,
            "deadline_s": self.deadline_s,
            "precision": self.precision,
            "mrows": self.mrows,
            "device": self.device.name,
            "use_local_memory": self.use_local_memory,
            "prepare_cost_s": self.prepare_cost_s,
            "tenants": self.tenants,
        }


@dataclass
class LoadReport:
    """The outcome of one loadgen run (``to_dict`` is the report)."""

    config: LoadConfig
    results: List[ServedResult]
    stats: Dict[str, Any]
    y_checksum: str
    schema: str = REPORT_SCHEMA
    extra: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def served(self) -> List[ServedResult]:
        return [r for r in self.results if r.served]

    @property
    def latencies(self) -> List[float]:
        return sorted(r.latency_s for r in self.served)

    def percentile(self, p: float) -> float:
        """Nearest-rank latency percentile over served requests.

        Well-defined on every input: 0.0 when nothing was served, the
        single sample for any ``p`` on one-element runs, and ``p``
        clamped into [0, 100] (so ``p=0`` is the minimum, ``p=100`` —
        or anything above — the maximum, never an index error).
        """
        lat = self.latencies
        if not lat:
            return 0.0
        p = min(100.0, max(0.0, float(p)))
        rank = min(len(lat), max(1, int(np.ceil(p / 100.0 * len(lat)))))
        return lat[rank - 1]

    @property
    def makespan_s(self) -> float:
        """First arrival to last finish, simulated seconds."""
        if not self.served:
            return 0.0
        first = min(r.arrival_s for r in self.results)
        last = max(r.finish_s for r in self.served)
        return last - first

    @property
    def throughput_rps(self) -> float:
        """Served requests per simulated second of makespan."""
        span = self.makespan_s
        return len(self.served) / span if span > 0 else 0.0

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The full report payload (what :func:`report_json` emits)."""
        by_status: Dict[str, int] = {}
        for r in self.results:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        lat = self.latencies
        return {
            "schema": self.schema,
            "config": self.config.to_dict(),
            "requests": {
                "submitted": len(self.results),
                **{s: by_status.get(s, 0)
                   for s in ("served", "rejected", "shed", "expired")},
            },
            "latency_s": {
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
                "mean": float(np.mean(lat)) if lat else 0.0,
                "max": lat[-1] if lat else 0.0,
            },
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            **self.stats,
            "y_checksum": self.y_checksum,
            **self.extra,
        }


def _resolve_specs(names: Sequence) -> List:
    """Suite specs for a mixed name/number selection, in given order."""
    by_name = {s.name: s for s in SUITE}
    by_number = {s.number: s for s in SUITE}
    specs = []
    for key in names:
        spec = by_number.get(key) if isinstance(key, int) \
            else by_name.get(str(key))
        if spec is None:
            known = ", ".join(s.name for s in SUITE)
            raise ValueError(
                f"unknown suite matrix {key!r}; expected a number 1-23 "
                f"or one of: {known}")
        specs.append(spec)
    return specs


def _arrival_times(config: LoadConfig,
                   rng: np.random.Generator) -> np.ndarray:
    """The open-loop arrival instants (simulated seconds, sorted)."""
    n = config.num_requests
    if config.pattern == "poisson":
        gaps = rng.exponential(1.0 / config.rate_rps, size=n)
        return np.cumsum(gaps)
    # burst: whole groups share one Poisson-placed instant; the group
    # process runs at rate/burst_size so the request rate is preserved
    groups = -(-n // config.burst_size)
    group_rate = config.rate_rps / config.burst_size
    instants = np.cumsum(rng.exponential(1.0 / group_rate, size=groups))
    return np.repeat(instants, config.burst_size)[:n]


def _tenant_matrices(config: LoadConfig, specs) -> List:
    """The multi-tenant matrix population, spec-major order.

    Laid out ``[spec0/t0, spec0/t1, ..., spec1/t0, ...]``.  Tenant 0
    is the suite matrix itself; tenant ``t >= 1`` keeps the triplet
    *pattern* (same row/col arrays, hence the same pattern
    fingerprint) and rescales every value by a per-tenant stream drawn
    from ``default_rng([seed, spec.number, t])`` — deterministic,
    order-independent, and never zeroing a nonzero (the factors live
    in [0.5, 1.5]).
    """
    from repro.formats.coo import COOMatrix

    population = []
    for spec in specs:
        base = spec.generate(scale=config.scale, seed=config.seed)
        population.append(base)
        for t in range(1, config.tenants):
            trng = np.random.default_rng([config.seed, spec.number, t])
            factors = trng.uniform(0.5, 1.5, size=base.vals.size)
            population.append(COOMatrix(
                base.rows, base.cols, base.vals * factors,
                (base.nrows, base.ncols)))
    return population


def _fold_checksum(results: List[ServedResult]) -> str:
    """Fold served results into the report checksum, dropping payloads.

    Folds the per-request ``sha256(y)`` *digest* (not the raw bytes)
    in request-id order — an engine running with ``keep_y="digest"``
    contributes the digest it already computed, an engine keeping full
    payloads contributes the same digest computed here, so the
    checksum is engine-agnostic while staying memory-bounded for
    100k-request runs.  Byte-identical checksums still certify
    bit-identical served vectors.
    """
    fold = hashlib.sha256()
    for r in sorted(results, key=lambda r: r.request_id):
        if not r.served:
            continue
        d = r.y_digest
        if d is None and r.y is not None:
            d = hashlib.sha256(np.ascontiguousarray(r.y).tobytes()).digest()
        if d is not None:
            fold.update(d)
        r.y = None  # drop payloads once folded into the checksum
        r.y_digest = d
    return fold.hexdigest()[:16]


def run_loadgen(
    config: LoadConfig,
    *deprecated_engine,
    engine: Optional[Engine] = None,
    batch: Optional[BatchConfig] = None,
    admission: Optional[AdmissionPolicy] = None,
    cache: Optional["PlanCache"] = None,
    chaos=None,
) -> LoadReport:
    """Generate the arrival trace and serve it; returns the report.

    The checksum folds every served request's ``sha256(y)`` digest in
    request-id order, so byte-identical reports mean bit-identical
    served results.  ``engine`` accepts any
    :class:`~repro.serve.engine.Engine` — a
    :class:`~repro.serve.engine.ServeEngine` or a
    :class:`~repro.cluster.engine.ClusterEngine` — and takes over
    serving (the engine-construction knobs ``batch``/``admission``/
    ``cache`` then must stay unset); the report's ``schema`` follows
    the engine's ``report_schema``.  Passing the engine positionally
    is deprecated (:class:`~repro.validation.ReproDeprecationWarning`)
    — name it: ``run_loadgen(config, engine=...)``.  ``cache``
    optionally shares a :class:`~repro.serve.cache.PlanCache` across
    runs — the warm-cache steady state the throughput benchmarks
    measure (report *contents* are cache-independent; only wall-clock
    changes).  ``chaos`` optionally applies a
    :class:`~repro.resilience.chaos.ChaosSchedule` — a correlated
    multi-device fault sequence — before serving; it requires a
    cluster engine (anything with the ``fail_device`` scheduling
    surface) and the schedule is recorded in the report.
    """
    if deprecated_engine:
        if len(deprecated_engine) > 1:
            raise TypeError(
                f"run_loadgen() takes at most one positional engine, got "
                f"{len(deprecated_engine)}")
        if engine is not None:
            raise TypeError(
                "run_loadgen() got the engine both positionally and as "
                "engine=; pass it once, by keyword")
        warnings.warn(
            "passing the serving engine to run_loadgen() positionally is "
            "deprecated; call run_loadgen(config, engine=...) instead",
            ReproDeprecationWarning, stacklevel=2)
        engine = deprecated_engine[0]
    if engine is not None and (batch is not None or admission is not None
                               or cache is not None):
        raise TypeError(
            "run_loadgen() got both an engine and engine-construction "
            "arguments (batch/admission/cache); configure the engine "
            "you pass")

    specs = _resolve_specs(config.matrices)
    rng = np.random.default_rng(config.seed)
    matrices = _tenant_matrices(config, specs)
    times = _arrival_times(config, rng)
    picks = rng.integers(0, len(matrices), size=config.num_requests)
    xs = [np.asarray(rng.standard_normal(matrices[j].ncols))
          for j in picks]

    if engine is None:
        engine = ServeEngine(
            device=config.device, precision=config.precision,
            mrows=config.mrows, use_local_memory=config.use_local_memory,
            batch=batch, admission=admission, cache=cache,
            prepare_cost_s=config.prepare_cost_s, size_scale=config.scale,
            keep_y="digest")
    extra: Dict[str, Any] = {"matrix_names": [s.name for s in specs]}
    if chaos is not None:
        if not hasattr(engine, "fail_device"):
            raise TypeError(
                "chaos= needs a cluster engine (fail_device/"
                "slow_device/rejoin_device scheduling surface); pass "
                "engine=serve_session(cluster=N, ...)")
        chaos.apply(engine)
        extra["chaos_schedule"] = chaos.to_dict()
    for at, j, x in zip(times, picks, xs):
        engine.submit(matrices[j], x, at=float(at),
                      deadline_s=config.deadline_s)
    results = engine.run()

    return LoadReport(
        config=config, results=results, stats=engine.stats(),
        y_checksum=_fold_checksum(results),
        schema=getattr(engine, "report_schema", REPORT_SCHEMA),
        extra=extra)


def report_json(report: Union[LoadReport, Dict[str, Any]]) -> str:
    """The report's canonical JSON (sorted keys — byte-stable)."""
    payload = report.to_dict() if isinstance(report, LoadReport) else report
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def append_serve_trajectory(report: LoadReport,
                            path: Union[str, Path],
                            schema: str = TRAJECTORY_SCHEMA) -> Path:
    """Append one run's report to a serving trajectory file.

    Same envelope as the bench trajectory: ``{"schema": ...,
    "entries": [...]}``, created on first use.  The entry is the report
    plus a wall-clock timestamp (the trajectory records *when* history
    was made; the report itself stays timestamp-free so it can be
    compared byte-for-byte).  ``schema`` selects the envelope tag —
    :data:`TRAJECTORY_SCHEMA` for single-engine ``BENCH_serve.json``
    histories, :data:`CLUSTER_TRAJECTORY_SCHEMA` for the cluster's
    ``BENCH_cluster.json``.
    """
    path = Path(path)
    payload: Dict[str, Any] = {"schema": schema, "entries": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict) and isinstance(
                existing.get("entries"), list):
            payload = existing
    entry = dict(report.to_dict())
    entry["schema"] = schema
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    payload["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def trajectory_path() -> Optional[str]:
    """The trajectory file named by the environment (or ``None``)."""
    return os.environ.get(TRAJECTORY_ENV) or None


def cluster_trajectory_path() -> Optional[str]:
    """The cluster trajectory file named by the environment (or
    ``None``); conventionally ``BENCH_cluster.json``."""
    return os.environ.get(CLUSTER_TRAJECTORY_ENV) or None


def chaos_trajectory_path() -> Optional[str]:
    """The cluster-chaos trajectory file named by the environment (or
    ``None``); conventionally ``BENCH_chaos.json``."""
    return os.environ.get(CHAOS_TRAJECTORY_ENV) or None

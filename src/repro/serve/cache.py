"""PlanCache: bounded LRU of prepared per-matrix serving artifacts.

The paper's economics — expensive once-per-matrix preparation (pattern
detection, CRSD build, codelet generation, autotuning) buying cheap
steady-state SpMV — only pay off if the prepared artifacts are *kept*.
The cache keys everything on the matrix's stable content
:func:`~repro.core.serialize.fingerprint`, so the same mathematical
matrix arriving as COO, CRSD or dense hits the same entry, and reports
agree with cache keys on identity.

One :class:`PlanEntry` per matrix holds the canonical COO, the CRSD
builds (per ``mrows``), the prepared kernel runners (per precision /
local-memory / ``nvec``), autotune results and ``auto_format``
decisions.  The cache is LRU-bounded on *entries* (matrices); evicting
an entry drops every prepared artifact with it.

Hit/miss/eviction counters live in :class:`CacheStats` and are also
emitted as :mod:`repro.obs` events (category ``serve``) when a profile
session is active, so serving runs show cache behaviour in the same
reports as kernel launches.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.obs import recorder as _obs
from repro.ocl.device import DeviceSpec, TESLA_C2050

__all__ = ["CacheStats", "PlanEntry", "PlanCache",
           "ShardCertificateStore", "default_cache",
           "reset_default_cache"]


@dataclass
class CacheStats:
    """Lookup counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: runner misses that still reused a same-pattern donor's plan,
    #: codelets and fused state (only the value buffers were rebuilt)
    pattern_reuses: int = 0
    #: shard-certificate hits served from a *shared*
    #: :class:`ShardCertificateStore` where the certificate was proven
    #: by a different cache (another cluster device)
    cert_reuses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """The counters plus the derived hit rate, JSON-safe."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pattern_reuses": self.pattern_reuses,
            "cert_reuses": self.cert_reuses,
            "hit_rate": self.hit_rate,
        }


#: distinguishes the caches sharing one certificate store (never
#: recycled, unlike ``id()``)
_CACHE_TOKENS = itertools.count()


class ShardCertificateStore:
    """Shared, read-only-after-insert map of shard certificates.

    Certification is pure in the *pattern*: the provers never read
    matrix values, so a certificate proven once is valid for every
    same-pattern matrix on every device.  Cluster devices therefore
    share one store — keyed by (pattern fingerprint, row-block
    boundaries, execution config) — and the first cache to prove a
    plan publishes it; later caches (usually other devices) get a hit
    and count it as cross-device reuse.  Entries are never mutated
    after insert; only a cache that privately owns its store may
    :meth:`prune` orphans on eviction.
    """

    def __init__(self):
        #: key -> (certificate, token of the cache that proved it)
        self._certs: Dict[Tuple, Tuple[Any, int]] = {}
        self.cross_device_reuses = 0

    def __len__(self) -> int:
        return len(self._certs)

    def get(self, key: Tuple, token: int):
        """The certificate under ``key`` (or ``None``) plus whether the
        hit crossed caches — proven by a cache other than ``token``."""
        rec = self._certs.get(key)
        if rec is None:
            return None, False
        cert, owner = rec
        cross = owner != token
        if cross:
            self.cross_device_reuses += 1
        return cert, cross

    def put(self, key: Tuple, cert, token: int) -> None:
        """Publish ``cert`` under ``key`` (first prover wins; the store
        is read-only after insert)."""
        self._certs.setdefault(key, (cert, token))

    def prune(self, live_patterns: Iterable[str]) -> None:
        """Drop certificates whose pattern is not in ``live_patterns``
        (private per-cache stores only — shared stores are never
        pruned, other devices may still hold the pattern)."""
        live = set(live_patterns)
        self._certs = {k: v for k, v in self._certs.items()
                       if k[0] in live}

    def clear(self) -> None:
        """Drop every certificate (private-store reset)."""
        self._certs.clear()

    def to_dict(self) -> Dict[str, Any]:
        """Residency and reuse counters as a JSON-safe dict."""
        return {
            "certificates": len(self._certs),
            "cross_device_reuses": self.cross_device_reuses,
        }


class PlanEntry:
    """Every prepared artifact of one matrix (one fingerprint).

    Built lazily through the owning cache's accessors; not constructed
    directly by callers.
    """

    def __init__(self, fingerprint: str, coo,
                 pattern_fingerprint: Optional[str] = None):
        self.fingerprint = fingerprint
        #: sparsity-structure hash shared by same-pattern matrices
        #: (see :func:`repro.core.serialize.pattern_fingerprint`)
        self.pattern_fingerprint = pattern_fingerprint
        self.coo = coo
        #: mrows -> CRSDMatrix
        self._crsd: Dict[int, Any] = {}
        #: (device, precision, use_local_memory, nvec|None) -> runner
        self._runners: Dict[Tuple, Any] = {}
        #: memoised autotune results, keyed by the tune arguments
        self._tunes: Dict[Tuple, Any] = {}
        #: memoised auto_format decisions
        self._formats: Dict[Tuple, str] = {}

    @property
    def num_runners(self) -> int:
        return len(self._runners)

    def crsd(self, mrows: int):
        """The CRSD build for ``mrows`` (or ``None`` if not built)."""
        return self._crsd.get(int(mrows))


class PlanCache:
    """Bounded LRU cache of :class:`PlanEntry` objects.

    Parameters
    ----------
    capacity:
        Maximum number of matrix entries kept; the least recently used
        entry (and all its prepared runners) is evicted beyond that.
    """

    def __init__(self, capacity: int = 16,
                 cert_store: Optional[ShardCertificateStore] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, PlanEntry]" = OrderedDict()
        #: (pattern fp, runner key) -> donor runner whose plan/codelets
        #: a same-pattern new-values matrix adopts instead of rebuilding
        self._pattern_runners: Dict[Tuple, Any] = {}
        #: shard certificates are pattern-keyed (the provers never read
        #: values) and live in a :class:`ShardCertificateStore` — a
        #: private one per cache by default, or a shared one passed by
        #: the cluster so devices inherit each other's proofs
        self._private_store = cert_store is None
        self.cert_store = (cert_store if cert_store is not None
                           else ShardCertificateStore())
        self._cert_token = next(_CACHE_TOKENS)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # entry management
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    @property
    def fingerprints(self) -> Tuple[str, ...]:
        """Resident fingerprints, least- to most-recently used."""
        return tuple(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept; a shared certificate
        store is left alone — other devices may still use it)."""
        self._entries.clear()
        self._pattern_runners.clear()
        if self._private_store:
            self.cert_store.clear()

    def entry(self, matrix) -> PlanEntry:
        """The (possibly new) entry for ``matrix``, LRU-touched.

        Entry creation itself is not counted as a hit or miss — only
        prepared-artifact lookups (:meth:`runner`, :meth:`tune`,
        :meth:`auto_format`) move the counters.
        """
        from repro.api import _as_coo
        from repro.core.serialize import fingerprints as _fingerprints

        fps = _fingerprints(matrix)
        entry = self._entries.get(fps.combined)
        if entry is None:
            entry = PlanEntry(fps.combined, _as_coo(matrix),
                              pattern_fingerprint=fps.pattern)
            self._entries[fps.combined] = entry
            self._evict_over_capacity()
        else:
            self._entries.move_to_end(fps.combined)
        return entry

    def _evict_over_capacity(self) -> None:
        evicted = False
        while len(self._entries) > self.capacity:
            fp, entry = self._entries.popitem(last=False)
            self.stats.evictions += 1
            evicted = True
            dead = {id(r) for r in entry._runners.values()}
            self._pattern_runners = {
                k: v for k, v in self._pattern_runners.items()
                if id(v) not in dead}
            self._event("plan_cache.evict", fingerprint=fp,
                        runners=entry.num_runners)
        if evicted and self._private_store:
            # shard certificates live while any resident entry still
            # shares the pattern; prune the orphans with the eviction
            # (shared stores are never pruned: other devices' entries
            # may still reference the pattern)
            self.cert_store.prune(
                e.pattern_fingerprint for e in self._entries.values())

    # ------------------------------------------------------------------
    # prepared artifacts
    # ------------------------------------------------------------------
    def runner(
        self,
        matrix,
        *,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        mrows: int = 128,
        use_local_memory: bool = True,
        nvec: Optional[int] = None,
    ):
        """A *prepared* CRSD runner for ``matrix`` (cached).

        ``nvec=None`` returns a single-vector
        :class:`~repro.gpu_kernels.crsd_runner.CrsdSpMV`; an integer
        returns the multi-vector
        :class:`~repro.gpu_kernels.crsd_runner.CrsdSpMM` with that
        batch width baked into its codelets.
        """
        from repro.core.crsd import CRSDMatrix

        entry = self.entry(matrix)
        if isinstance(matrix, CRSDMatrix) and matrix.mrows == int(mrows):
            entry._crsd.setdefault(int(mrows), matrix)
        return self.runner_for(
            entry, device=device, precision=precision, mrows=mrows,
            use_local_memory=use_local_memory, nvec=nvec)

    def runner_for(
        self,
        entry: PlanEntry,
        *,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        mrows: int = 128,
        use_local_memory: bool = True,
        nvec: Optional[int] = None,
    ):
        """:meth:`runner` for an already-resolved entry (the serving
        engine's hot path — no re-fingerprinting per launch)."""
        from repro.core.crsd import CRSDMatrix, compatible_wavefront
        from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV

        key = (device, precision, bool(use_local_memory),
               int(mrows), None if nvec is None else int(nvec))
        runner = entry._runners.get(key)
        if runner is not None:
            self._hit("runner", entry.fingerprint, nvec=nvec)
            return runner
        self._miss("runner", entry.fingerprint, nvec=nvec)
        crsd = entry._crsd.get(int(mrows))
        if crsd is None:
            crsd = CRSDMatrix.from_coo(
                entry.coo, mrows=mrows,
                wavefront_size=compatible_wavefront(mrows))
            entry._crsd[int(mrows)] = crsd
        # same-pattern donor: a matrix with the identical sparsity
        # structure but different values already prepared this runner
        # configuration — adopt its plan, codelets and fused state
        pkey = (entry.pattern_fingerprint, key)
        template = (self._pattern_runners.get(pkey)
                    if entry.pattern_fingerprint is not None else None)
        if nvec is None:
            runner = CrsdSpMV(crsd, device=device, precision=precision,
                              use_local_memory=use_local_memory,
                              template=template)
        else:
            runner = CrsdSpMM(crsd, nvec=int(nvec), device=device,
                              precision=precision, template=template)
        if template is not None:
            self.stats.pattern_reuses += 1
            self._event("plan_cache.pattern_reuse",
                        fingerprint=entry.fingerprint,
                        pattern=entry.pattern_fingerprint, nvec=nvec)
        runner.prepare()
        entry._runners[key] = runner
        if entry.pattern_fingerprint is not None:
            self._pattern_runners[pkey] = runner
        return runner

    def shard_certificate(
        self,
        matrix,
        num_shards: int,
        *,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        mrows: int = 128,
        use_local_memory: bool = True,
        boundaries: Optional[Sequence[int]] = None,
    ):
        """Memoised shard-plan certification for ``matrix``.

        Plans the wavefront-aligned row-block split (``boundaries``
        defaults to the alignment-quantised even split) and runs
        :func:`repro.analyze.sharding.certify_shard_plan` over it,
        memoising the resulting
        :class:`~repro.analyze.sharding.ShardCertificate` in the
        :class:`ShardCertificateStore` under the *pattern* fingerprint
        and boundary rows — the provers never read matrix values, so a
        same-pattern new-values matrix (the serving steady state)
        inherits the certificate, and cluster devices sharing the store
        inherit each other's proofs (counted in
        :attr:`CacheStats.cert_reuses`).  Declined certificates are
        cached too: re-asking cannot make an unprovable plan provable.
        """
        return self.shard_certificate_for(
            self.entry(matrix), num_shards, device=device,
            precision=precision, mrows=mrows,
            use_local_memory=use_local_memory, boundaries=boundaries)

    def shard_certificate_for(
        self,
        entry: PlanEntry,
        num_shards: int,
        *,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        mrows: int = 128,
        use_local_memory: bool = True,
        boundaries: Optional[Sequence[int]] = None,
    ):
        """:meth:`shard_certificate` for an already-resolved entry
        (the cluster's hot path — no re-fingerprinting)."""
        from repro.analyze.sharding import certify_shard_plan
        from repro.shard.plan import ShardPlanner, auto_boundaries

        if boundaries is None:
            cuts = auto_boundaries(int(entry.coo.nrows), int(mrows),
                                   int(num_shards))
        else:
            cuts = [int(b) for b in boundaries]
        key = (entry.pattern_fingerprint, tuple(cuts), int(num_shards),
               device, precision, int(mrows), bool(use_local_memory))
        cert, cross = self.cert_store.get(key, self._cert_token)
        if cert is not None:
            if cross:
                self.stats.cert_reuses += 1
            self._hit("shard_plan", entry.fingerprint,
                      num_shards=int(num_shards), cross_device=cross)
            return cert
        self._miss("shard_plan", entry.fingerprint,
                   num_shards=int(num_shards))
        crsd = self._crsd_for(entry, mrows)
        shard_plan = ShardPlanner(crsd, coo=entry.coo).plan(
            int(num_shards), boundaries=boundaries)
        cert = certify_shard_plan(
            crsd, shard_plan, device=device, precision=precision,
            use_local_memory=use_local_memory)
        self.cert_store.put(key, cert, self._cert_token)
        return cert

    def shard_runner_for(
        self,
        entry: PlanEntry,
        *,
        num_shards: int,
        shard_index: int,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        mrows: int = 128,
        use_local_memory: bool = True,
    ):
        """A *prepared* single-shard
        :class:`~repro.shard.executor.ShardedSpMV` runner (cached).

        The cluster's per-device execution path: the device serving
        shard ``shard_index`` of a split matrix activates it only
        through the certificate — :meth:`shard_certificate_for` is
        consulted first (a store hit on another device's proof counts
        as cross-device reuse), and an unprovable plan raises
        :class:`~repro.shard.plan.ShardPlanError` instead of running.
        """
        from repro.shard.executor import ShardedSpMV
        from repro.shard.plan import ShardPlanError

        key = ("shard", device, precision, bool(use_local_memory),
               int(mrows), int(num_shards), int(shard_index))
        runner = entry._runners.get(key)
        if runner is not None:
            self._hit("shard_runner", entry.fingerprint,
                      shard=int(shard_index))
            return runner
        cert = self.shard_certificate_for(
            entry, num_shards, device=device, precision=precision,
            mrows=mrows, use_local_memory=use_local_memory)
        if not cert.ok:
            raise ShardPlanError(
                "refusing to activate an uncertified shard plan: "
                + ("; ".join(cert.reasons) or "no certificate"))
        self._miss("shard_runner", entry.fingerprint,
                   shard=int(shard_index))
        runner = ShardedSpMV(
            self._crsd_for(entry, mrows), cert,
            shards=(int(shard_index),), device=device,
            precision=precision)
        runner.prepare()
        entry._runners[key] = runner
        return runner

    def _crsd_for(self, entry: PlanEntry, mrows: int):
        """The (possibly new) CRSD build of ``entry`` for ``mrows``."""
        from repro.core.crsd import CRSDMatrix, compatible_wavefront

        crsd = entry._crsd.get(int(mrows))
        if crsd is None:
            crsd = CRSDMatrix.from_coo(
                entry.coo, mrows=mrows,
                wavefront_size=compatible_wavefront(mrows))
            entry._crsd[int(mrows)] = crsd
        return crsd

    def tune(self, matrix, **kwargs):
        """Memoised :func:`repro.core.autotune.tune` for ``matrix``.

        The kwargs (grids, precision, ``fast``, ...) are part of the
        memo key, so different tuning requests coexist; a repeated
        request is served from the cache instead of re-running the
        whole grid search.
        """
        from repro.core.autotune import tune as _tune

        entry = self.entry(matrix)
        key = tuple(sorted(
            (k, tuple(v) if isinstance(v, (list, tuple)) else v)
            for k, v in kwargs.items()))
        result = entry._tunes.get(key)
        if result is not None:
            self._hit("tune", entry.fingerprint)
            return result
        self._miss("tune", entry.fingerprint)
        result = _tune(entry.coo, **kwargs)
        entry._tunes[key] = result
        return result

    def auto_format(self, matrix, precision: str = "double",
                    device: DeviceSpec = TESLA_C2050,
                    mrows: int = 128) -> str:
        """Memoised :func:`repro.api.auto_format` decision."""
        from repro.api import _auto_format_impl as _auto_format

        entry = self.entry(matrix)
        key = (device, precision, int(mrows))
        fmt = entry._formats.get(key)
        if fmt is not None:
            self._hit("auto_format", entry.fingerprint)
            return fmt
        self._miss("auto_format", entry.fingerprint)
        fmt = _auto_format(entry.coo, precision, device, mrows)
        entry._formats[key] = fmt
        return fmt

    # ------------------------------------------------------------------
    # counters + observation
    # ------------------------------------------------------------------
    def _hit(self, kind: str, fingerprint: str, **attrs) -> None:
        self.stats.hits += 1
        self._event(f"plan_cache.hit.{kind}", fingerprint=fingerprint,
                    **attrs)

    def _miss(self, kind: str, fingerprint: str, **attrs) -> None:
        self.stats.misses += 1
        self._event(f"plan_cache.miss.{kind}", fingerprint=fingerprint,
                    **attrs)

    @staticmethod
    def _event(name: str, **attrs) -> None:
        sess = _obs.ACTIVE
        if sess is not None:
            sess.record_event(name, category="serve", **attrs)


#: the process-wide default cache (``repro.api.auto_format`` and
#: ``repro tune`` consult it so in-session repeats never re-prepare)
_DEFAULT: Optional[PlanCache] = None

#: capacity of the default cache
DEFAULT_CAPACITY = 16


def default_cache() -> PlanCache:
    """The process-wide :class:`PlanCache` (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PlanCache(capacity=DEFAULT_CAPACITY)
    return _DEFAULT


def reset_default_cache() -> None:
    """Drop the process-wide cache (tests; memory pressure)."""
    global _DEFAULT
    _DEFAULT = None

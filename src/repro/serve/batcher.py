"""Request micro-batching: coalesce same-matrix SpMV requests.

Batching many right-hand sides against one matrix into a single
:class:`~repro.gpu_kernels.crsd_runner.CrsdSpMM` launch is where
serving throughput lives: the value slab (the dominant traffic of a
diagonal matrix) is read once for the whole batch instead of once per
request, and the fixed launch overhead is paid once.  The SpMM
codelets accumulate in exactly the single-vector order, so a batched
``y`` is bit-identical to the per-request path (asserted across the
suite by ``tests/serve/test_batching_equivalence.py``).

The :class:`MicroBatcher` holds the FIFO of admitted requests and
makes the launch decision the engine's event loop asks for: serve the
group of the *oldest* waiting request (head-of-line fairness), gather
its same-key followers up to ``max_batch``, and launch when the batch
is full, the head has waited ``max_delay_s`` of simulated time, or the
stream is flushing.  Groups below the SpMM threshold fall back to
per-request SpMV launches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Tuple

import numpy as np

from repro.serve.clock import FOREVER

__all__ = ["BatchConfig", "Request", "MicroBatcher"]


@dataclass(frozen=True)
class BatchConfig:
    """Batching knobs of one serving session.

    Parameters
    ----------
    max_batch:
        Most requests coalesced into one SpMM launch (also the largest
        ``nvec`` codelet the plan cache will generate).
    max_delay_s:
        Longest *simulated* time the oldest waiting request may be held
        back to let a batch fill before the engine launches anyway.
    min_spmm:
        Smallest group executed as one SpMM launch; smaller groups run
        as individual SpMV launches (a 1-wide SpMM codelet buys
        nothing over the tuned SpMV codelet).
    """

    max_batch: int = 16
    max_delay_s: float = 200e-6
    min_spmm: int = 2

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}")
        if self.min_spmm < 2:
            raise ValueError(f"min_spmm must be >= 2, got {self.min_spmm}")


@dataclass
class Request:
    """One admitted SpMV request, queued for execution.

    ``key`` is the batching identity — requests only coalesce when
    their keys are equal (same matrix fingerprint, same precision).
    ``deadline_s`` is the *absolute* simulated instant after which the
    result is worthless (``None`` = no deadline).  A request carrying a
    resilience policy is never batched: it is routed through the
    degradation ladder individually (``batchable=False``).
    """

    id: int
    key: Tuple
    entry: Any                      # PlanEntry of the matrix
    x: np.ndarray
    arrival_s: float
    deadline_s: Optional[float] = None
    resilience: Optional[Any] = None
    batchable: bool = True
    #: set on a cluster-internal sub-request serving one row-block of a
    #: split matrix: the shard index / total shard count of the
    #: certified plan, and the cluster-level id of the parent request
    shard_index: Optional[int] = None
    shard_count: Optional[int] = None
    parent_id: Optional[int] = None
    #: admission already happened upstream (the cluster router admits a
    #: split request once, not once per shard)
    preadmitted: bool = False


class MicroBatcher:
    """The pending-request FIFO and its launch decision."""

    def __init__(self, config: BatchConfig):
        self.config = config
        self._pending: Deque[Request] = deque()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._pending)

    def push(self, request: Request) -> None:
        """Append an admitted request to the FIFO."""
        self._pending.append(request)

    def shed_oldest(self) -> Request:
        """Remove and return the oldest queued request (drop-oldest
        overflow)."""
        return self._pending.popleft()

    def drain_all(self) -> List[Request]:
        """Remove and return every queued request in FIFO order (device
        evacuation)."""
        items = list(self._pending)
        self._pending.clear()
        return items

    def cancel_where(self, predicate) -> List[Request]:
        """Remove and return every queued request matching
        ``predicate`` (cluster-side cancellation of a re-placed
        request's surviving sub-requests)."""
        cancelled = [r for r in self._pending if predicate(r)]
        if cancelled:
            dead = {r.id for r in cancelled}
            self._pending = deque(
                r for r in self._pending if r.id not in dead)
        return cancelled

    def drain_expired(self, now: float) -> List[Request]:
        """Remove and return every queued request whose deadline has
        already passed at ``now`` (they would be dead on arrival at the
        device)."""
        expired = [r for r in self._pending
                   if r.deadline_s is not None and now > r.deadline_s]
        if expired:
            dead = {r.id for r in expired}
            self._pending = deque(
                r for r in self._pending if r.id not in dead)
        return expired

    # ------------------------------------------------------------------
    def next_forced_launch_s(self) -> float:
        """The instant the head request's patience runs out (the
        engine must launch no later than this), or ``FOREVER`` when
        nothing is queued."""
        if not self._pending:
            return FOREVER
        head = self._pending[0]
        if not head.batchable:
            return head.arrival_s  # launches as soon as the device frees
        return head.arrival_s + self.config.max_delay_s

    def form_batch(self, now: float, flush: bool = False
                   ) -> Optional[List[Request]]:
        """The launch decision at simulated instant ``now``.

        Returns the requests to launch together (removed from the
        queue), or ``None`` to keep waiting for the batch to fill.
        ``flush=True`` means no further arrivals can come (end of
        stream): waiting would gain nothing, so any group launches.
        """
        if not self._pending:
            return None
        head = self._pending[0]
        if not head.batchable:
            self._pending.popleft()
            return [head]
        group = [r for r in self._pending
                 if r.batchable and r.key == head.key]
        group = group[: self.config.max_batch]
        full = len(group) >= self.config.max_batch
        impatient = now >= head.arrival_s + self.config.max_delay_s
        if not (full or impatient or flush):
            return None
        taken = {r.id for r in group}
        self._pending = deque(
            r for r in self._pending if r.id not in taken)
        return group

"""The serving engine: a discrete-event loop over the simulated device.

Ties the subsystem together: arrivals pass the
:class:`~repro.serve.admission.AdmissionController`, wait in the
:class:`~repro.serve.batcher.MicroBatcher`, and execute on the
simulated runtime through the
:class:`~repro.serve.cache.PlanCache` — same-matrix groups as one
:class:`~repro.gpu_kernels.crsd_runner.CrsdSpMM` launch, small groups
as per-request SpMV, resilience-routed requests individually through
the degradation ladder.

Time is fully simulated (:mod:`repro.serve.clock`): the device is a
single resource that is busy for the cost-model-predicted duration of
each launch, arrivals queue while it is busy, and queue pressure is
what makes batches form — exactly the dynamics of a real serving
stack, but deterministic and byte-reproducible per seed.

Usage (the ``repro.serve_session()`` facade wraps exactly this)::

    engine = ServeEngine(batch=BatchConfig(max_batch=16))
    engine.submit(A, x1)
    engine.submit(A, x2)            # same matrix: will coalesce
    results = engine.run()          # drain the stream
    engine.stats()                  # histogram, cache + queue counters
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.obs.recorder import maybe_span
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.perf.costmodel import predict_gpu_time
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.batcher import BatchConfig, MicroBatcher, Request
from repro.serve.cache import PlanCache
from repro.serve.clock import FOREVER, SimulatedClock

__all__ = ["Engine", "ServeEngine", "ServedResult"]


@runtime_checkable
class Engine(Protocol):
    """The serving surface shared by :class:`ServeEngine` and
    :class:`~repro.cluster.engine.ClusterEngine`.

    LoadGenerator, the CLI and the tests program against exactly this
    protocol, so single-device and cluster serving are interchangeable:
    :meth:`submit` enqueues one request and returns its id,
    :meth:`run` drains the stream up to a simulated instant (the
    default ``FOREVER`` drains everything), :meth:`stats` reports
    JSON-safe counters.
    """

    def submit(self, matrix, x: np.ndarray, *,
               at: Optional[float] = None,
               deadline_s: Optional[float] = None,
               resilience=None) -> int:
        """Enqueue one request; returns its request id."""
        ...

    def run(self, until: float = FOREVER) -> List["ServedResult"]:
        """Drain the stream up to ``until`` simulated seconds."""
        ...

    def stats(self) -> Dict[str, Any]:
        """JSON-safe serving counters."""
        ...


@dataclass
class ServedResult:
    """Terminal record of one request.

    ``status`` is one of ``served`` / ``rejected`` / ``shed`` /
    ``expired``; timing fields are simulated seconds and only
    meaningful for served requests (``latency_s`` is finish − arrival,
    including queueing and batching delay).
    """

    request_id: int
    fingerprint: str
    status: str
    arrival_s: float
    start_s: float = 0.0
    finish_s: float = 0.0
    latency_s: float = 0.0
    batch_size: int = 0
    batched: bool = False
    deadline_met: Optional[bool] = None
    y: Optional[np.ndarray] = None
    resilience: Optional[Any] = None
    #: sha256 of the served ``y`` bytes when the engine runs in
    #: ``keep_y="digest"`` mode (``y`` itself is dropped)
    y_digest: Optional[bytes] = None
    #: set on a cluster shard sub-result: the cluster-level parent
    #: request id and the shard index this partial ``y`` covers
    parent_id: Optional[int] = None
    shard_index: Optional[int] = None

    @property
    def served(self) -> bool:
        return self.status == "served"


class ServeEngine:
    """Deterministic serving of an SpMV request stream.

    Parameters
    ----------
    device / precision / mrows / use_local_memory:
        The execution configuration every served request shares.
    batch / admission:
        The :class:`~repro.serve.batcher.BatchConfig` and
        :class:`~repro.serve.admission.AdmissionPolicy`.
    cache:
        A :class:`~repro.serve.cache.PlanCache` to share across
        engines; by default each engine owns one.
    prepare_cost_s:
        Simulated seconds charged to the device the first time a
        (matrix, nvec) codelet is prepared — the cache's economics made
        visible in the latency numbers.  Defaults to 0 so micro-batching
        effects can be studied in isolation.
    size_scale:
        Problem-scale factor forwarded to the cost model (suite
        matrices generated at ``scale`` should pass the same value).
    keep_y:
        Store each served ``y`` on its result (turn off for large
        load-generation sweeps where only the timing matters).
    """

    def __init__(
        self,
        *,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        mrows: int = 128,
        use_local_memory: bool = True,
        batch: Optional[BatchConfig] = None,
        admission: Optional[AdmissionPolicy] = None,
        cache: Optional[PlanCache] = None,
        prepare_cost_s: float = 0.0,
        size_scale: float = 1.0,
        keep_y: Union[bool, str] = True,
    ):
        self.device = device
        self.precision = precision
        self.mrows = int(mrows)
        self.use_local_memory = bool(use_local_memory)
        self.batch_config = batch or BatchConfig()
        self.cache = cache if cache is not None else PlanCache()
        self.controller = AdmissionController(admission or AdmissionPolicy())
        self.clock = SimulatedClock()
        self.batcher = MicroBatcher(self.batch_config)
        self.prepare_cost_s = float(prepare_cost_s)
        self.size_scale = float(size_scale)
        if keep_y not in (True, False, "digest"):
            raise ValueError(
                f"keep_y must be True, False or 'digest', got {keep_y!r}")
        self.keep_y = keep_y
        #: cleared by :meth:`evacuate` when the simulated device is
        #: lost; a dead engine refuses further submissions and runs
        self.alive = True
        #: straggler multiplier on every service time (``device_slow``
        #: chaos actions set it > 1 for a window; backoff accounting is
        #: never scaled — only compute is)
        self.service_scale = 1.0

        self._arrivals: List[Tuple[float, int, Request]] = []
        self._next_id = 0
        #: the simulated instant the device frees from its last launch
        #: (persists across bounded :meth:`run` calls: an in-flight
        #: launch completes past ``until``, the next epoch waits for it)
        self._busy_until = 0.0
        #: SpMM launch sizes -> count (per-request-SpMV launches under
        #: size 1)
        self.batch_histogram: Dict[int, int] = {}
        self.spmm_launches = 0
        self.spmv_launches = 0
        #: single-shard launches of split matrices (cluster serving)
        self.shard_launches = 0
        #: summed KernelTrace counters over every launch this engine ran
        self.counter_totals: Dict[str, int] = {}
        self.results: List[ServedResult] = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix,
        x: np.ndarray,
        *,
        at: Optional[float] = None,
        deadline_s: Optional[float] = None,
        resilience=None,
    ) -> int:
        """Enqueue one request; returns its id.

        ``at`` is the simulated arrival instant (default: the current
        clock — submissions before :meth:`run` arrive together at 0).
        ``deadline_s`` is *relative* to the arrival.  ``resilience`` (a
        :class:`repro.resilience.Policy` or ``True``) routes this
        request through the degradation ladder, unbatched.  Admission
        control is applied at the arrival instant, inside :meth:`run`.
        """
        from repro.resilience.policy import Policy
        from repro.validation import validate_vector

        self._require_alive()
        entry = self.cache.entry(matrix)
        x = np.ascontiguousarray(
            validate_vector(x, entry.coo.ncols), dtype=np.float64)
        arrival = self.clock.now if at is None else max(float(at),
                                                       self.clock.now)
        if resilience is True:
            resilience = Policy()
        rid = self._next_id
        self._next_id += 1
        req = Request(
            id=rid,
            key=(entry.fingerprint, self.precision),
            entry=entry,
            x=x,
            arrival_s=arrival,
            deadline_s=None if deadline_s is None
            else arrival + float(deadline_s),
            resilience=resilience,
            batchable=resilience is None,
        )
        self._arrivals.append((arrival, rid, req))
        return rid

    def submit_shard(
        self,
        matrix,
        x: np.ndarray,
        *,
        num_shards: int,
        shard_index: int,
        at: Optional[float] = None,
        deadline_s: Optional[float] = None,
        parent_id: Optional[int] = None,
    ) -> int:
        """Enqueue one shard of a split matrix (cluster-internal).

        The request executes only the certified row-block
        ``shard_index`` of the ``num_shards``-way plan; its result
        carries the partial ``y`` rows plus ``parent_id`` so the
        cluster can reassemble.  Shard sub-requests are pre-admitted
        (the router admitted the parent once) and never batched.
        """
        from repro.validation import validate_vector

        self._require_alive()
        entry = self.cache.entry(matrix)
        x = np.ascontiguousarray(
            validate_vector(x, entry.coo.ncols), dtype=np.float64)
        arrival = self.clock.now if at is None else max(float(at),
                                                       self.clock.now)
        rid = self._next_id
        self._next_id += 1
        req = Request(
            id=rid,
            key=(entry.fingerprint, self.precision, "shard",
                 int(num_shards), int(shard_index)),
            entry=entry,
            x=x,
            arrival_s=arrival,
            deadline_s=None if deadline_s is None
            else arrival + float(deadline_s),
            batchable=False,
            shard_index=int(shard_index),
            shard_count=int(num_shards),
            parent_id=parent_id,
            preadmitted=True,
        )
        self._arrivals.append((arrival, rid, req))
        return rid

    def _require_alive(self) -> None:
        if not self.alive:
            raise RuntimeError(
                "this simulated device was lost (evacuated); "
                "submit to a live engine")

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self, until: float = FOREVER) -> List[ServedResult]:
        """Drain submitted arrivals; returns this drain's results in
        completion order (also appended to :attr:`results`).

        ``until`` bounds the epoch: only arrivals at or before that
        simulated instant are consumed, no launch *starts* after it,
        and queued work plus later arrivals stay for the next call (an
        in-flight launch completes past ``until`` — the device stays
        busy into the next epoch).  The default ``FOREVER`` drains
        everything, exactly the single-engine behaviour.
        """
        self._require_alive()
        final = until == FOREVER
        pending = sorted(self._arrivals, key=lambda a: (a[0], a[1]))
        if final:
            arrivals, self._arrivals = pending, []
        else:
            arrivals = [a for a in pending if a[0] <= until]
            self._arrivals = [a for a in pending if a[0] > until]
        drained: List[ServedResult] = []
        i, n = 0, len(arrivals)
        busy_until = max(self.clock.now, self._busy_until)
        with maybe_span("serve.run", "serve", requests=n):
            while i < n or self.batcher.depth:
                now = self.clock.now
                while i < n and arrivals[i][0] <= now:
                    self._admit(arrivals[i][2], drained)
                    i += 1
                for req in self.batcher.drain_expired(now):
                    self.controller.record_expired()
                    drained.append(self._terminal(req, "expired"))
                if now >= busy_until and self.batcher.depth:
                    group = self.batcher.form_batch(
                        now, flush=(final and i >= n))
                    if group is not None:
                        busy_until = self._execute(group, now, drained)
                        continue
                t_next = FOREVER
                if i < n:
                    t_next = min(t_next, arrivals[i][0])
                if self.batcher.depth:
                    if now < busy_until:
                        t_next = min(t_next, busy_until)
                    else:
                        t_next = min(t_next,
                                     self.batcher.next_forced_launch_s())
                if t_next is FOREVER or t_next > until:
                    break  # nothing more can happen in this epoch
                self.clock.advance_to(max(t_next, now))
        self._busy_until = busy_until
        self.results.extend(drained)
        return drained

    # ------------------------------------------------------------------
    # device loss (cluster rebalancing)
    # ------------------------------------------------------------------
    def evacuate(self) -> List[Request]:
        """Simulate losing this device: mark it dead and hand back
        every request that has not executed yet — the queued batcher
        FIFO first, then unconsumed arrivals, both in deterministic
        order — for the cluster to re-place.  Work that already
        finished keeps its results; a dead engine refuses further
        submissions."""
        self.alive = False
        queued = self.batcher.drain_all()
        future = [a[2] for a in sorted(self._arrivals,
                                       key=lambda a: (a[0], a[1]))]
        self._arrivals = []
        return queued + future

    def cancel_where(self, predicate: Callable[[Request], bool]
                     ) -> List[Request]:
        """Remove and return every not-yet-executed request matching
        ``predicate`` (queued or still arriving) — the cluster cancels
        a re-placed split request's surviving sub-requests with this."""
        cancelled = self.batcher.cancel_where(predicate)
        keep: List[Tuple[float, int, Request]] = []
        for a in self._arrivals:
            if predicate(a[2]):
                cancelled.append(a[2])
            else:
                keep.append(a)
        self._arrivals = keep
        return cancelled

    # ------------------------------------------------------------------
    def _admit(self, req: Request, drained: List[ServedResult]) -> None:
        if req.preadmitted:
            self.batcher.push(req)
            return
        verdict = self.controller.admit(self.batcher.depth)
        if verdict == "reject":
            drained.append(self._terminal(req, "rejected"))
            return
        if verdict == "shed-oldest":
            victim = self.batcher.shed_oldest()
            drained.append(self._terminal(victim, "shed"))
        self.batcher.push(req)

    def _terminal(self, req: Request, status: str) -> ServedResult:
        return ServedResult(
            request_id=req.id, fingerprint=req.key[0], status=status,
            arrival_s=req.arrival_s, parent_id=req.parent_id,
            shard_index=req.shard_index)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, group: List[Request], now: float,
                 drained: List[ServedResult]) -> float:
        """Run one launch group starting at ``now``; returns the
        simulated instant the device frees."""
        if group[0].shard_index is not None:
            finish = self._execute_shard_request(group[0], now, drained)
        elif group[0].resilience is not None:
            finish = self._execute_resilient(group[0], now, drained)
        elif len(group) >= self.batch_config.min_spmm:
            finish = self._execute_spmm(group, now, drained)
        else:
            finish = self._execute_spmv(group, now, drained)
        return finish

    @property
    def busy_until(self) -> float:
        """The simulated instant the device frees from its last
        launch (the cluster's hedge triggers read it)."""
        return self._busy_until

    def _service_seconds(self, trace, crsd, misses: int) -> float:
        launches = 2 if crsd.num_scatter_rows else 1
        seconds = predict_gpu_time(
            trace, self.device, self.precision, num_launches=launches,
            size_scale=self.size_scale).total
        return (seconds + misses * self.prepare_cost_s) \
            * self.service_scale

    def _account(self, trace) -> None:
        for k, v in dataclasses.asdict(trace).items():
            self.counter_totals[k] = self.counter_totals.get(k, 0) + v

    def _execute_spmm(self, group: List[Request], now: float,
                      drained: List[ServedResult]) -> float:
        k = len(group)
        misses0 = self.cache.stats.misses
        runner = self.cache.runner_for(
            group[0].entry, device=self.device, precision=self.precision,
            mrows=self.mrows, use_local_memory=self.use_local_memory,
            nvec=k)
        X = np.ascontiguousarray(np.stack([r.x for r in group], axis=1))
        with maybe_span("serve.batch", "serve", size=k,
                        fingerprint=group[0].key[0]):
            run = runner.run(X, trace=True)
        self._account(run.trace)
        service = self._service_seconds(
            run.trace, runner.matrix, self.cache.stats.misses - misses0)
        finish = now + service
        self.spmm_launches += 1
        self.batch_histogram[k] = self.batch_histogram.get(k, 0) + 1
        for j, req in enumerate(group):
            drained.append(self._served(
                req, now, finish, batch_size=k, batched=True,
                y=run.y[:, j].copy() if self.keep_y else None,
                resilience=run.resilience))
        return finish

    def _execute_spmv(self, group: List[Request], now: float,
                      drained: List[ServedResult]) -> float:
        t = now
        for req in group:
            misses0 = self.cache.stats.misses
            runner = self.cache.runner_for(
                req.entry, device=self.device, precision=self.precision,
                mrows=self.mrows, use_local_memory=self.use_local_memory)
            with maybe_span("serve.single", "serve",
                            fingerprint=req.key[0]):
                run = runner.run(req.x, trace=True)
            self._account(run.trace)
            service = self._service_seconds(
                run.trace, runner.matrix,
                self.cache.stats.misses - misses0)
            start, t = t, t + service
            self.spmv_launches += 1
            self.batch_histogram[1] = self.batch_histogram.get(1, 0) + 1
            drained.append(self._served(
                req, start, t, batch_size=1, batched=False,
                y=run.y.copy() if self.keep_y else None,
                resilience=run.resilience))
        return t

    def _execute_shard_request(self, req: Request, now: float,
                               drained: List[ServedResult]) -> float:
        """One certified row-block shard of a split matrix.

        The runner comes through
        :meth:`~repro.serve.cache.PlanCache.shard_runner_for`, which
        activates the shard only after the certificate store vouches
        for the plan.  The result's ``y`` is the shard's partial rows
        (always kept, whatever ``keep_y`` says — the cluster needs them
        to reassemble); service time is the shard's own traced cost
        with its own launch count.
        """
        misses0 = self.cache.stats.misses
        runner = self.cache.shard_runner_for(
            req.entry, num_shards=req.shard_count,
            shard_index=req.shard_index, device=self.device,
            precision=self.precision, mrows=self.mrows,
            use_local_memory=self.use_local_memory)
        with maybe_span("serve.shard", "serve", fingerprint=req.key[0],
                        shard=req.shard_index):
            run = runner.run(req.x, trace=True)
        self._account(run.trace)
        subplan = runner.subplans[req.shard_index]
        launches = 2 if subplan.scatter.num_rows else 1
        seconds = predict_gpu_time(
            run.trace, self.device, self.precision,
            num_launches=launches, size_scale=self.size_scale).total
        seconds += (self.cache.stats.misses - misses0) \
            * self.prepare_cost_s
        finish = now + seconds * self.service_scale
        self.shard_launches += 1
        self.batch_histogram[1] = self.batch_histogram.get(1, 0) + 1
        spec = runner.shard_plan.shards[req.shard_index]
        y_part = run.y[spec.row_start:spec.row_end].copy()
        drained.append(self._served(
            req, now, finish, batch_size=1, batched=False, y=y_part))
        return finish

    def _execute_resilient(self, req: Request, now: float,
                           drained: List[ServedResult]) -> float:
        from repro.resilience.engine import resilient_spmv

        with maybe_span("serve.resilient", "serve", fingerprint=req.key[0]):
            run = resilient_spmv(
                req.entry.coo, req.x, "crsd", device=self.device,
                precision=self.precision, mrows=self.mrows,
                use_local_memory=self.use_local_memory,
                policy=req.resilience, trace=True)
        self._account(run.trace)
        report = run.resilience
        served = report.served_rung if report is not None else "crsd"
        launches = 1
        if served is None or served.startswith("crsd"):
            # the resilient path builds its own runners, so the CRSD may
            # not exist in the cache yet — build (and memoise) it here
            # rather than silently under-billing the launch overhead of
            # scatter matrices as a single launch
            crsd_like = req.entry.crsd(self.mrows)
            if crsd_like is None:
                from repro.core.crsd import (
                    CRSDMatrix,
                    compatible_wavefront,
                )

                crsd_like = CRSDMatrix.from_coo(
                    req.entry.coo, mrows=self.mrows,
                    wavefront_size=compatible_wavefront(self.mrows))
                req.entry._crsd[int(self.mrows)] = crsd_like
            if crsd_like.num_scatter_rows:
                launches = 2
        seconds = predict_gpu_time(
            run.trace, self.device, self.precision, num_launches=launches,
            size_scale=self.size_scale).total * self.service_scale
        if report is not None:
            seconds += report.total_backoff_s
        finish = now + seconds
        self.spmv_launches += 1
        self.batch_histogram[1] = self.batch_histogram.get(1, 0) + 1
        drained.append(self._served(
            req, now, finish, batch_size=1, batched=False,
            y=run.y.copy() if self.keep_y else None,
            resilience=report))
        return finish

    def _served(self, req: Request, start: float, finish: float, *,
                batch_size: int, batched: bool, y, resilience=None
                ) -> ServedResult:
        met = None
        if req.deadline_s is not None:
            met = finish <= req.deadline_s
            if not met:
                self.controller.record_deadline_miss()
        y_digest = None
        if (y is not None and self.keep_y == "digest"
                and req.shard_index is None):
            # large sweeps keep only the bit-exact digest; shard
            # partials stay intact for the cluster to reassemble
            y_digest = hashlib.sha256(
                np.ascontiguousarray(y).tobytes()).digest()
            y = None
        return ServedResult(
            request_id=req.id, fingerprint=req.key[0], status="served",
            arrival_s=req.arrival_s, start_s=start, finish_s=finish,
            latency_s=finish - req.arrival_s, batch_size=batch_size,
            batched=batched, deadline_met=met, y=y, resilience=resilience,
            y_digest=y_digest, parent_id=req.parent_id,
            shard_index=req.shard_index)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Queue, batching and cache counters of everything run so
        far (JSON-safe)."""
        return {
            "clock_s": self.clock.now,
            "admission": self.controller.to_dict(),
            "batching": {
                "max_batch": self.batch_config.max_batch,
                "max_delay_s": self.batch_config.max_delay_s,
                "min_spmm": self.batch_config.min_spmm,
                "spmm_launches": self.spmm_launches,
                "spmv_launches": self.spmv_launches,
                "shard_launches": self.shard_launches,
                "histogram": {str(k): v for k, v in
                              sorted(self.batch_histogram.items())},
            },
            "cache": self.cache.stats.to_dict(),
        }

"""Chaos sweeps: fault-inject the 23-matrix suite and prove bit-identity.

:func:`chaos_sweep` is the engine behind ``repro faultsim``: for every
(matrix, executor, precision) case it runs one resilient SpMV under a
seeded fault plan, then replays the *serving rung* fault-free and
checks the served ``y`` is **bit-identical** — the differential
guarantee that resilience never trades correctness for availability.
A case may alternatively end in
:class:`~repro.resilience.policy.ResilienceExhausted`; what it may
never do is silently diverge.

Everything is deterministic: per-case injector seeds are derived
arithmetically from the sweep seed, backoff is simulated (never
slept), and the report carries no wall-clock timestamps — two sweeps
with the same seed produce byte-identical JSON.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.resilience.engine import resilient_spmv
from repro.resilience.faults import FaultInjector, FaultSpec, inject
from repro.resilience.policy import Policy, ResilienceExhausted

__all__ = [
    "CHAOS_SCHEMA",
    "ChaosAction",
    "ChaosReport",
    "ChaosSchedule",
    "chaos_sweep",
    "default_chaos_specs",
    "default_cluster_schedule",
]

#: schema tag of the ``repro faultsim`` JSON report
CHAOS_SCHEMA = "repro-faultsim/v1"

#: chaos-action kinds a :class:`ChaosSchedule` may carry: the
#: structural device kills, plus the cluster-level straggler and flap
SCHEDULE_KINDS = ("device_oom", "local_oom", "launch", "device_slow",
                  "device_flap")


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled cluster fault.

    ``device_oom`` / ``local_oom`` / ``launch`` kill ``device`` at
    ``at_s`` permanently (the kill *kind* is the incident label).
    ``device_slow`` multiplies the device's service times by
    ``factor`` for ``duration_s`` simulated seconds (a straggler).
    ``device_flap`` kills the device at ``at_s`` and rejoins it — a
    fresh engine on the same ring index — ``duration_s`` later.
    """

    kind: str
    device: int
    at_s: float
    duration_s: float = 0.0
    factor: float = 4.0

    def __post_init__(self):
        if self.kind not in SCHEDULE_KINDS:
            raise ValueError(
                f"unknown chaos action kind {self.kind!r}; expected one "
                f"of {SCHEDULE_KINDS}")
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.kind in ("device_slow", "device_flap") \
                and self.duration_s <= 0:
            raise ValueError(
                f"{self.kind} needs duration_s > 0, got {self.duration_s}")
        if self.kind == "device_slow" and self.factor <= 1.0:
            raise ValueError(
                f"device_slow needs factor > 1, got {self.factor}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe action payload (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "device": self.device,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosAction":
        return cls(
            kind=payload["kind"], device=int(payload["device"]),
            at_s=float(payload["at_s"]),
            duration_s=float(payload.get("duration_s", 0.0)),
            factor=float(payload.get("factor", 4.0)))


@dataclass(frozen=True)
class ChaosSchedule:
    """A correlated multi-device fault sequence for one cluster run.

    The schedule is declarative and engine-agnostic: :meth:`apply`
    translates every action into the cluster engine's scheduling calls
    (``fail_device`` / ``slow_device`` / ``rejoin_device``), which the
    engine's event loop then applies as epoch boundaries in
    deterministic order.  ``to_dict``/``from_dict`` round-trip the
    schedule through the chaos report JSON byte-stably.
    """

    actions: Tuple[ChaosAction, ...]

    def __post_init__(self):
        object.__setattr__(self, "actions", tuple(self.actions))
        for a in self.actions:
            if not isinstance(a, ChaosAction):
                raise TypeError(
                    f"actions must be ChaosAction, got {type(a)}")

    def apply(self, engine) -> None:
        """Schedule every action on a cluster engine (anything with
        the ``fail_device`` / ``slow_device`` / ``rejoin_device``
        scheduling surface)."""
        for a in self.actions:
            if a.kind == "device_slow":
                engine.slow_device(a.device, at_s=a.at_s,
                                   duration_s=a.duration_s,
                                   factor=a.factor)
            elif a.kind == "device_flap":
                engine.fail_device(a.device, at_s=a.at_s,
                                   kind="device_flap")
                engine.rejoin_device(a.device,
                                     at_s=a.at_s + a.duration_s)
            else:
                engine.fail_device(a.device, at_s=a.at_s, kind=a.kind)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe schedule payload (inverse of :meth:`from_dict`)."""
        return {"actions": [a.to_dict() for a in self.actions]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosSchedule":
        return cls(actions=tuple(
            ChaosAction.from_dict(a) for a in payload["actions"]))


def default_cluster_schedule(
    num_devices: int,
    *,
    seed: int = 0,
    at_s: float = 3e-4,
) -> ChaosSchedule:
    """The standard correlated multi-fault plan: one straggler, one
    permanent kill, one flap — on distinct devices, offsets derived
    arithmetically from ``seed`` (hash-free, deterministic).

    On clusters too small to keep a quorum through a kill *and* a flap
    (fewer than 3 devices) the permanent kill is dropped; the flap
    still exercises loss + rejoin.
    """
    if num_devices < 2:
        raise ValueError(
            f"a chaos schedule needs >= 2 devices, got {num_devices}")
    slow = seed % num_devices
    flap = (slow + 1) % num_devices
    actions = [
        ChaosAction("device_slow", slow, at_s=at_s,
                    duration_s=6.0 * at_s, factor=8.0),
        ChaosAction("device_flap", flap, at_s=2.0 * at_s,
                    duration_s=2.0 * at_s),
    ]
    if num_devices >= 3:
        kill = (slow + 2) % num_devices
        actions.append(
            ChaosAction("device_oom", kill, at_s=1.5 * at_s))
    return ChaosSchedule(actions=tuple(actions))


def default_chaos_specs() -> Tuple[FaultSpec, ...]:
    """The standard chaos plan: a mix of transient launch/allocation
    faults (absorbed by retries), an occasionally-persistent prepare
    failure (forces ladder descent), and rare soft corruptions (must be
    caught, never served)."""
    return (
        FaultSpec(site="launch:*", kind="launch",
                  probability=0.08, max_fires=2),
        FaultSpec(site="alloc:x", kind="device_oom",
                  probability=0.05, max_fires=1),
        FaultSpec(site="phase:crsd.prepare", kind="device_oom",
                  probability=0.25),
        FaultSpec(site="launch:*", kind="soft",
                  probability=0.05, max_fires=2, payload="nan"),
        FaultSpec(site="launch:*", kind="soft",
                  probability=0.03, max_fires=1, payload="nudge"),
    )


@dataclass
class ChaosReport:
    """Result of one :func:`chaos_sweep`."""

    seed: int
    scale: float
    format: str
    cases: List[Dict[str, Any]] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def silent_divergences(self) -> List[Dict[str, Any]]:
        """Cases that served a ``y`` differing from the fault-free run
        of the serving rung — the outcome the layer must never allow."""
        return [c for c in self.cases
                if c["outcome"] == "served" and not c["identical"]]

    @property
    def exit_code(self) -> int:
        return 1 if self.silent_divergences else 0

    def to_dict(self) -> Dict[str, Any]:
        """The full JSON payload (schema ``repro-faultsim/v1``)."""
        return {
            "schema": CHAOS_SCHEMA,
            "seed": self.seed,
            "scale": self.scale,
            "format": self.format,
            "meta": dict(self.meta),
            "cases": list(self.cases),
            "silent_divergences": len(self.silent_divergences),
        }

    def summary(self) -> str:
        """Human-readable digest: one header plus one line per case."""
        served = [c for c in self.cases if c["outcome"] == "served"]
        degraded = [c for c in served if c["degraded"]]
        exhausted = [c for c in self.cases if c["outcome"] == "exhausted"]
        faults = sum(c["faults"] for c in self.cases)
        lines = [
            f"faultsim seed={self.seed}: {len(self.cases)} cases, "
            f"{faults} faults injected — {len(served)} served "
            f"({len(degraded)} degraded), {len(exhausted)} exhausted, "
            f"{len(self.silent_divergences)} silent divergences",
        ]
        for c in self.cases:
            if c["outcome"] == "served":
                tag = "ok " if c["identical"] else "DIVERGED"
                lines.append(
                    f"  {c['matrix']:<12} {c['executor']:<8} "
                    f"{c['precision']:<6} -> {c['served_rung']:<12} "
                    f"[{tag}] attempts={c['attempts']} "
                    f"faults={c['faults']} "
                    f"backoff={c['total_backoff_s'] * 1e3:.2f}ms")
            else:
                lines.append(
                    f"  {c['matrix']:<12} {c['executor']:<8} "
                    f"{c['precision']:<6} -> EXHAUSTED "
                    f"attempts={c['attempts']} faults={c['faults']}")
        return "\n".join(lines)


def _case_seed(seed: int, number: int, ei: int, pi: int) -> int:
    """Arithmetic (hash-free, thus deterministic) per-case seed."""
    return (seed * 1_000_003 + number * 10_007 + ei * 101 + pi * 13) \
        % (2 ** 32)


def chaos_sweep(
    seed: int = 0,
    scale: float = 0.01,
    *,
    matrices: Optional[Sequence[int]] = None,
    format: str = "crsd",
    executors: Sequence[str] = ("batched", "pergroup"),
    precisions: Sequence[str] = ("double", "single"),
    device: DeviceSpec = TESLA_C2050,
    mrows: int = 128,
    specs: Optional[Sequence[FaultSpec]] = None,
    policy: Optional[Policy] = None,
) -> ChaosReport:
    """Fault-inject SpMV across the suite and differentially verify.

    For each case the resilient call runs under a per-case seeded
    injector; if it serves, the serving rung is re-run with injection
    suspended and the two ``y`` arrays are compared bit-for-bit.
    """
    from repro.matrices.suite23 import SUITE
    from repro.ocl.executor import EXECUTOR_ENV, EXECUTOR_MODES
    from repro.resilience.engine import _make_rung_runner
    from repro.gpu_kernels.base import precision_dtype

    for ex in executors:
        if ex not in EXECUTOR_MODES:
            raise ValueError(
                f"unknown executor {ex!r}; expected one of {EXECUTOR_MODES}")
    specs = tuple(specs) if specs is not None else default_chaos_specs()
    policy = policy or Policy(max_attempts=2)
    nums = set(matrices) if matrices is not None else None

    report = ChaosReport(seed=seed, scale=scale, format=format, meta={
        "executors": list(executors),
        "precisions": list(precisions),
        "matrices": sorted(nums) if nums is not None else "suite23",
        "specs": [s.to_dict() for s in specs],
        "policy": {
            "max_attempts": policy.max_attempts,
            "backoff_base_s": policy.backoff_base_s,
            "backoff_factor": policy.backoff_factor,
        },
        "device": device.name,
        "mrows": mrows,
    })
    saved = os.environ.get(EXECUTOR_ENV)
    try:
        for spec_m in SUITE:
            if nums is not None and spec_m.number not in nums:
                continue
            coo = spec_m.generate(scale=scale, seed=seed)
            rng = np.random.default_rng(seed + spec_m.number)
            x = rng.standard_normal(coo.ncols)
            for ei, executor in enumerate(executors):
                os.environ[EXECUTOR_ENV] = executor
                for pi, precision in enumerate(precisions):
                    case: Dict[str, Any] = {
                        "matrix": spec_m.name,
                        "number": spec_m.number,
                        "executor": executor,
                        "precision": precision,
                    }
                    injector = FaultInjector(
                        seed=_case_seed(seed, spec_m.number, ei, pi),
                        specs=specs,
                    )
                    try:
                        with inject(injector):
                            run = resilient_spmv(
                                coo, x, format,
                                device=device, precision=precision,
                                mrows=mrows, policy=policy,
                            )
                    except ResilienceExhausted as exc:
                        case.update(
                            outcome="exhausted",
                            attempts=len(exc.report.attempts),
                            faults=len(injector.events),
                            total_backoff_s=exc.report.total_backoff_s,
                            incident=exc.report.to_dict(),
                        )
                        report.cases.append(case)
                        continue
                    inc = run.resilience
                    # differential check: replay the serving rung with
                    # injection suspended; the served y must match it
                    # bit-for-bit
                    with inject(None):
                        dtype = precision_dtype(precision)
                        ref_runner = _make_rung_runner(
                            inc.served_rung, coo, device, precision,
                            mrows, dtype)
                        ref_run = ref_runner.prepare().run(x)
                    case.update(
                        outcome="served",
                        served_rung=inc.served_rung,
                        degraded=inc.degraded,
                        attempts=len(inc.attempts),
                        faults=len(injector.events),
                        total_backoff_s=inc.total_backoff_s,
                        identical=bool(np.array_equal(run.y, ref_run.y)),
                        incident=inc.to_dict(),
                    )
                    report.cases.append(case)
    finally:
        if saved is None:
            os.environ.pop(EXECUTOR_ENV, None)
        else:
            os.environ[EXECUTOR_ENV] = saved
    return report

"""Resilient execution: fault injection, retries, graceful degradation.

The simulated runtime can genuinely fail — the paper's own evaluation
loses the DIA/double bars for the ``af_*_k101`` matrices because the
format does not fit the C2050's 3 GB
(:class:`~repro.ocl.errors.DeviceMemoryError`).  This package turns
such failures from run-killers into handled incidents:

- :mod:`repro.resilience.faults` — a deterministic, seedable **fault
  injector** wrapping the runtime's allocation and launch boundaries.
  Injection is opt-in and zero-cost when off (the same single
  ``ACTIVE``-global guard the observation layer uses).
- :mod:`repro.resilience.policy` — the **retry/degradation policy**:
  bounded attempts per rung, deterministic backoff *accounting* (the
  simulation never sleeps), the fallback ladder.
- :mod:`repro.resilience.engine` — the **graceful-degradation ladder**:
  CRSD+local → CRSD no-local → HYB → CSR → CPU reference.  Every served
  ``y`` is verified against the COO reference; only when every rung
  fails does a typed :class:`ResilienceExhausted` escape.
- :mod:`repro.resilience.chaos` — the ``repro faultsim`` engine: a
  seeded chaos sweep over the 23-matrix suite with a differential
  bit-identity check against the fault-free run.

Usage::

    import repro
    from repro.resilience import Policy, FaultInjector, FaultSpec, inject

    run = repro.spmv(A, x, resilience=Policy())      # survives OOM
    with inject(FaultInjector(seed=7, specs=[FaultSpec("launch:*",
                                                       "launch",
                                                       at_calls=(0,))])):
        run = repro.spmv(A, x, resilience=Policy())  # retried, served
    run.resilience.served_rung, run.resilience.attempts

Public names resolve lazily (PEP 562) so the runtime hooks can import
:mod:`repro.resilience.faults` without dragging the whole ladder in.
"""

__all__ = [
    "DEFAULT_LADDER",
    "ChaosAction",
    "ChaosSchedule",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "IncidentReport",
    "Policy",
    "ResilienceExhausted",
    "active",
    "chaos_sweep",
    "default_cluster_schedule",
    "inject",
    "ladder_for",
    "resilient_spmv",
]

#: lazily-resolved public attribute -> defining module
_LAZY = {
    "DEFAULT_LADDER": "repro.resilience.engine",
    "ChaosAction": "repro.resilience.chaos",
    "ChaosSchedule": "repro.resilience.chaos",
    "FAULT_KINDS": "repro.resilience.faults",
    "FaultEvent": "repro.resilience.faults",
    "FaultInjector": "repro.resilience.faults",
    "FaultSpec": "repro.resilience.faults",
    "IncidentReport": "repro.resilience.engine",
    "Policy": "repro.resilience.policy",
    "ResilienceExhausted": "repro.resilience.policy",
    "active": "repro.resilience.faults",
    "chaos_sweep": "repro.resilience.chaos",
    "default_cluster_schedule": "repro.resilience.chaos",
    "inject": "repro.resilience.faults",
    "ladder_for": "repro.resilience.engine",
    "resilient_spmv": "repro.resilience.engine",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        value = getattr(importlib.import_module(_LAZY[name]), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

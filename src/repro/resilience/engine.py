"""The graceful-degradation ladder: resilient SpMV execution.

:func:`resilient_spmv` runs one ``y = A @ x`` under a
:class:`~repro.resilience.policy.Policy`: each ladder rung is attempted
up to ``max_attempts`` times (transient faults are retried with
deterministic backoff accounting); a rung that keeps failing is
abandoned for the next, less demanding one —

    CRSD+local-mem → CRSD no-local → HYB → CSR → CPU reference

(the HYB rung is exactly Bell & Garland's ELL+COO degradation, and the
walk itself is the feasibility-driven format fallback the
format-selection literature applies when the preferred layout does not
fit).  Every candidate ``y`` is verified against the COO reference, and
an attempt during which a *soft* fault touched the output is
invalidated outright — a served result is therefore bit-identical to
the fault-free run of the serving rung.  Only when every rung fails
does a typed :class:`~repro.resilience.policy.ResilienceExhausted`
escape, carrying the full :class:`IncidentReport`.

Incidents are also emitted as observation spans/events (category
``resilience``) when a profile session is active, so chaos runs show up
in the same reports as healthy ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import recorder as _obs
from repro.obs.recorder import maybe_span
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.errors import OCLError
from repro.resilience import faults as _flt
from repro.resilience.policy import Policy, ResilienceExhausted

__all__ = [
    "DEFAULT_LADDER",
    "AttemptRecord",
    "IncidentReport",
    "ladder_for",
    "resilient_spmv",
]

#: the full degradation ladder, most- to least-demanding
DEFAULT_LADDER: Tuple[str, ...] = (
    "crsd", "crsd-nolocal", "hyb", "csr", "cpu",
)


def ladder_for(fmt: str, use_local_memory: bool = True) -> Tuple[str, ...]:
    """The rung sequence for a requested format.

    Formats on the default ladder enter it at their own rung; DIA and
    ELL (not fallback rungs themselves — they are the *demanding*
    layouts the ladder exists to degrade from) run first and then join
    the ladder at HYB.
    """
    if fmt == "crsd":
        ladder = DEFAULT_LADDER if use_local_memory else DEFAULT_LADDER[1:]
    elif fmt == "crsd-nolocal":
        ladder = DEFAULT_LADDER[1:]
    elif fmt in ("dia", "ell"):
        ladder = (fmt,) + DEFAULT_LADDER[2:]
    elif fmt in DEFAULT_LADDER:
        ladder = DEFAULT_LADDER[DEFAULT_LADDER.index(fmt):]
    else:
        raise ValueError(
            f"no resilience ladder for format {fmt!r}; expected one of "
            f"{('crsd', 'crsd-nolocal', 'dia', 'ell', 'hyb', 'csr', 'cpu')}")
    return tuple(ladder)


@dataclass
class AttemptRecord:
    """One attempt of one rung."""

    rung: str
    attempt: int                     # 1-based within the rung
    outcome: str                     # served | fault | corrupt | verify-failed
    error: Optional[str] = None      # exception type name for faults
    message: str = ""
    backoff_s: float = 0.0           # simulated backoff charged *after*
    #                                  this attempt, before the retry

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation of this attempt."""
        return {
            "rung": self.rung,
            "attempt": self.attempt,
            "outcome": self.outcome,
            "error": self.error,
            "message": self.message,
            "backoff_s": self.backoff_s,
        }


@dataclass
class IncidentReport:
    """Everything one resilient SpMV call went through."""

    requested: str
    precision: str
    served_rung: Optional[str] = None
    attempts: List[AttemptRecord] = field(default_factory=list)
    total_backoff_s: float = 0.0
    faults_seen: int = 0             # injector events during this call
    verified: Optional[bool] = None  # verification result of the served y

    @property
    def degraded(self) -> bool:
        """Whether the serving rung differs from the requested one."""
        return self.served_rung is not None and \
            self.served_rung != self.requested

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation of the whole incident."""
        return {
            "requested": self.requested,
            "precision": self.precision,
            "served_rung": self.served_rung,
            "degraded": self.degraded,
            "attempts": [a.to_dict() for a in self.attempts],
            "total_backoff_s": self.total_backoff_s,
            "faults_seen": self.faults_seen,
            "verified": self.verified,
        }


class _CpuReference:
    """The ladder's last rung: the host COO reference kernel.

    Mimics the runner surface ``resilient_spmv`` needs (``prepare`` /
    ``run``) so the rung loop stays uniform; the trace is empty — no
    device work happens.
    """

    name = "cpu"

    def __init__(self, coo, dtype):
        self.coo = coo
        self.dtype = dtype

    def prepare(self) -> "_CpuReference":
        return self

    def run(self, x: np.ndarray, trace: bool = True):
        from repro.gpu_kernels.base import SpMVRun
        from repro.ocl.trace import KernelTrace

        x = np.ascontiguousarray(x, dtype=self.dtype)
        y = self.coo.matvec(x).astype(self.dtype)
        return SpMVRun(y=y, trace=KernelTrace())


def _make_rung_runner(rung: str, coo, device: DeviceSpec, precision: str,
                      mrows: int, dtype):
    """Build a fresh, unprepared runner for one ladder rung.

    Fresh per attempt: a fault mid-``prepare`` must not leave partial
    device allocations behind for the retry.
    """
    from repro.bench.runner import _build_runners

    if rung == "cpu":
        return _CpuReference(coo, dtype)
    fmt = "crsd" if rung == "crsd-nolocal" else rung
    return _build_runners(
        coo, device, precision, [fmt], mrows,
        use_local_memory=(rung != "crsd-nolocal"),
    )[fmt]


def resilient_spmv(
    A,
    x: np.ndarray,
    format: str = "crsd",
    *,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    mrows: int = 128,
    use_local_memory: bool = True,
    policy: Optional[Policy] = None,
    trace: bool = True,
):
    """``y = A @ x`` that degrades instead of dying.

    Returns an :class:`~repro.gpu_kernels.base.SpMVRun` whose
    ``resilience`` field carries the :class:`IncidentReport`; raises
    :class:`~repro.resilience.policy.ResilienceExhausted` only when
    every ladder rung failed.  ``A`` is anything
    :func:`repro.api._as_coo` understands.
    """
    from repro.api import _as_coo
    from repro.gpu_kernels.base import precision_dtype

    policy = policy or Policy()
    coo = _as_coo(A)
    dtype = precision_dtype(precision)
    x64 = np.ascontiguousarray(x, dtype=np.float64)
    if x64.ndim != 1 or x64.size != coo.ncols:
        raise ValueError(
            f"x must be a length-{coo.ncols} vector, got shape {x64.shape}")
    ref = coo.matvec(x64)
    refscale = max(1.0, float(np.abs(ref).max()))
    tol = policy.verify_tol if policy.verify_tol is not None else (
        1e-6 if precision == "double" else 1e-2)

    rungs: Sequence[str] = policy.ladder or ladder_for(format,
                                                       use_local_memory)
    report = IncidentReport(requested=rungs[0], precision=precision)
    inj = _flt.ACTIVE
    ev0 = len(inj.events) if inj is not None else 0

    with maybe_span("resilience.spmv", "resilience", requested=rungs[0],
                    precision=precision):
        for rung in rungs:
            for attempt in range(1, policy.max_attempts + 1):
                mark = len(inj.events) if inj is not None else 0
                rec = AttemptRecord(rung=rung, attempt=attempt,
                                    outcome="served")
                with maybe_span("resilience.attempt", "resilience",
                                rung=rung, attempt=attempt):
                    try:
                        runner = _make_rung_runner(
                            rung, coo, device, precision, mrows, dtype)
                        run = runner.prepare().run(x, trace=trace)
                    except OCLError as exc:
                        rec.outcome = "fault"
                        rec.error = type(exc).__name__
                        rec.message = str(exc)
                        run = None
                if run is not None and inj is not None and \
                        inj.soft_events_since(mark):
                    # the output was touched by a soft fault: the
                    # numbers cannot be trusted, retry as if it failed
                    rec.outcome = "corrupt"
                    rec.error = "SoftFault"
                    rec.message = (
                        f"{inj.soft_events_since(mark)} soft fault(s) "
                        "hit this attempt's launches")
                    run = None
                if run is not None and policy.verify:
                    err = float(np.abs(
                        run.y.astype(np.float64) - ref).max()) / refscale
                    if not np.isfinite(err) or err > tol:
                        rec.outcome = "verify-failed"
                        rec.error = "VerificationError"
                        rec.message = f"rel err {err:.3e} > tol {tol:.1e}"
                        run = None
                if run is not None:
                    report.attempts.append(rec)
                    report.served_rung = rung
                    report.verified = bool(policy.verify)
                    report.faults_seen = (
                        len(inj.events) - ev0 if inj is not None else 0)
                    if _obs.ACTIVE is not None:
                        _obs.ACTIVE.record_event(
                            "resilience.served", "resilience", rung=rung,
                            degraded=report.degraded,
                            attempts=len(report.attempts),
                            total_backoff_s=report.total_backoff_s,
                        )
                    run.resilience = report
                    return run
                # failed attempt: charge deterministic backoff before a
                # retry of the same rung (no backoff before descending)
                if attempt < policy.max_attempts:
                    rec.backoff_s = policy.backoff_s(attempt)
                    report.total_backoff_s += rec.backoff_s
                report.attempts.append(rec)
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.record_event(
                        "resilience.fault", "resilience", rung=rung,
                        attempt=attempt, outcome=rec.outcome,
                        error=rec.error or "",
                    )
            if _obs.ACTIVE is not None and rung != rungs[-1]:
                _obs.ACTIVE.record_event(
                    "resilience.fallback", "resilience", abandoned=rung)

    report.faults_seen = len(inj.events) - ev0 if inj is not None else 0
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.record_event(
            "resilience.exhausted", "resilience",
            attempts=len(report.attempts))
    raise ResilienceExhausted(
        f"every rung of the ladder failed ({' -> '.join(rungs)}; "
        f"{len(report.attempts)} attempts)", report=report)

"""Retry and degradation policy for the resilient execution layer.

A :class:`Policy` bounds how hard the ladder tries before giving up:
attempts per rung, the deterministic backoff *accounting* charged per
retry (the simulation never sleeps — backoff is a cost-model quantity,
summed into the incident report like kernel time is), and optionally a
custom rung sequence.

:class:`ResilienceExhausted` is the one typed error the resilient
layer lets escape: it means every rung of the ladder failed and carries
the full incident report, so the caller can see exactly what was tried.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Policy", "ResilienceExhausted"]


@dataclass(frozen=True)
class Policy:
    """Resilient-execution configuration for one ``repro.spmv`` call.

    Parameters
    ----------
    max_attempts:
        Attempts per ladder rung (first try + retries).  Transient
        faults are absorbed by retrying the same rung; persistent ones
        exhaust the attempts and walk down the ladder.
    backoff_base_s / backoff_factor:
        Deterministic exponential backoff charged per retry, in
        *simulated* seconds: retry ``k`` (1-based) of a rung accounts
        ``backoff_base_s * backoff_factor**(k-1)``.  No wall-clock
        sleep ever happens.
    ladder:
        Explicit rung sequence (names from
        :data:`repro.resilience.engine.DEFAULT_LADDER` plus
        ``dia``/``ell``).  ``None`` derives the ladder from the
        requested format via
        :func:`repro.resilience.engine.ladder_for`.
    verify:
        Verify every candidate ``y`` against the COO reference before
        serving it (the "never a silent wrong answer" guarantee).
    verify_tol:
        Relative-error tolerance for verification; ``None`` selects the
        per-precision default (1e-6 double, 1e-2 single — the same
        thresholds the profiler uses).
    """

    max_attempts: int = 3
    backoff_base_s: float = 1e-4
    backoff_factor: float = 2.0
    ladder: Optional[Tuple[str, ...]] = None
    verify: bool = True
    verify_tol: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and "
                             "non-decreasing (factor >= 1)")
        if self.ladder is not None:
            object.__setattr__(self, "ladder", tuple(self.ladder))

    def backoff_s(self, retry: int) -> float:
        """Simulated backoff charged before retry ``retry`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** (retry - 1)


class ResilienceExhausted(RuntimeError):
    """Every rung of the degradation ladder failed.

    ``.report`` carries the :class:`~repro.resilience.engine.IncidentReport`
    of everything that was attempted.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report

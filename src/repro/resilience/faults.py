"""Deterministic, seedable fault injection for the simulated runtime.

The injector wraps the three boundaries where the runtime can fail —
global-memory allocation (:meth:`repro.ocl.executor.Context.alloc`),
kernel launch entry/exit (:func:`repro.ocl.executor.launch` /
:func:`~repro.ocl.executor.launch_batched`) and runner phases
(:meth:`repro.gpu_kernels.base.GPUSpMV.prepare` / ``run``) — and fires
:class:`~repro.ocl.errors.DeviceMemoryError`,
:class:`~repro.ocl.errors.LocalMemoryError`,
:class:`~repro.ocl.errors.LaunchError` or *soft* numerical corruptions
according to declarative :class:`FaultSpec` rules.

Sites are strings the hooks build at each boundary::

    alloc:<buffer-name>      e.g. alloc:crsd_dia_val, alloc:x
    launch:<kernel-name>     e.g. launch:dia_kernel
    phase:<runner>.<phase>   e.g. phase:crsd.prepare, phase:dia.run

and :class:`FaultSpec.site` is an :mod:`fnmatch` pattern over them.
Firing is deterministic: schedules (``at_calls``) count matching calls
per spec, and probabilistic rules draw from the injector's own seeded
generator, so the same seed over the same call sequence reproduces the
same faults exactly.

Injection is **opt-in and zero-cost when off**: the module-level
:data:`ACTIVE` injector is ``None`` by default and every runtime hook
guards on that single attribute read — no bookkeeping, no allocation,
no rng draw on the disabled path (mirroring :mod:`repro.obs.recorder`).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ocl.errors import DeviceMemoryError, LaunchError, LocalMemoryError

__all__ = [
    "FAULT_KINDS",
    "INJECTABLE_FAULT_KINDS",
    "SOFT_PAYLOADS",
    "FaultSpec",
    "FaultEvent",
    "FaultInjector",
    "ACTIVE",
    "active",
    "inject",
]

#: recognised fault kinds; structural kinds raise the matching
#: simulated-runtime error, ``soft`` corrupts the launch's result,
#: and the cluster-level kinds (``device_slow`` — a straggler
#: service-time multiplier, ``device_flap`` — a kill followed by a
#: rejoin) describe whole-device chaos actions scheduled through
#: :class:`~repro.resilience.chaos.ChaosSchedule` rather than
#: injected at runtime sites
FAULT_KINDS = ("device_oom", "local_oom", "launch", "soft",
               "device_slow", "device_flap")

#: the subset of :data:`FAULT_KINDS` a :class:`FaultSpec` may inject
#: at alloc/launch/phase sites (cluster-level kinds are not
#: site-injectable)
INJECTABLE_FAULT_KINDS = ("device_oom", "local_oom", "launch", "soft")

#: soft-fault corruptions: poison one element with NaN, negate it, or
#: nudge it by one part in 2^20 (a "silent" bit-level corruption)
SOFT_PAYLOADS = ("nan", "flip", "nudge")

_KIND_ERRORS = {
    "device_oom": DeviceMemoryError,
    "local_oom": LocalMemoryError,
    "launch": LaunchError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault rule.

    Parameters
    ----------
    site:
        :mod:`fnmatch` pattern over fault sites (``"launch:*"``,
        ``"alloc:crsd_*"``, ``"phase:dia.prepare"``).
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Chance of firing per matching call (drawn from the injector's
        seeded generator).
    at_calls:
        Explicit 0-based indices of matching calls that fire (a
        call-count schedule; combines with ``probability`` by OR).
    max_fires:
        Stop firing after this many fires — a *transient* fault.
        ``None`` keeps firing forever: a *persistent* fault.
    payload:
        Soft-fault corruption, one of :data:`SOFT_PAYLOADS` (ignored
        for structural kinds).
    """

    site: str
    kind: str
    probability: float = 0.0
    at_calls: Tuple[int, ...] = ()
    max_fires: Optional[int] = None
    payload: str = "nan"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.kind not in INJECTABLE_FAULT_KINDS:
            raise ValueError(
                f"fault kind {self.kind!r} is cluster-level; schedule "
                f"it through repro.resilience.ChaosSchedule, not a "
                f"site-injected FaultSpec")
        if self.payload not in SOFT_PAYLOADS:
            raise ValueError(
                f"unknown soft payload {self.payload!r}; expected one of "
                f"{SOFT_PAYLOADS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        object.__setattr__(self, "at_calls",
                           tuple(int(c) for c in self.at_calls))

    @property
    def transient(self) -> bool:
        """Whether the rule stops firing after ``max_fires`` fires."""
        return self.max_fires is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation of the rule."""
        return {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
            "at_calls": list(self.at_calls),
            "max_fires": self.max_fires,
            "payload": self.payload,
        }


@dataclass
class FaultEvent:
    """One fired fault (the injector's incident log entry)."""

    site: str
    kind: str
    spec_index: int
    call_index: int
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation of the event."""
        return {
            "site": self.site,
            "kind": self.kind,
            "spec_index": self.spec_index,
            "call_index": self.call_index,
            "detail": self.detail,
        }


class FaultInjector:
    """Seeded fault injector over a set of :class:`FaultSpec` rules.

    The runtime hooks call :meth:`on_alloc`, :meth:`on_launch`,
    :meth:`on_launch_exit` and :meth:`on_phase`; everything else is
    bookkeeping.  ``injector.events`` is the ordered log of fired
    faults — the resilient executor reads it to detect soft corruptions
    (see :mod:`repro.resilience.engine`) and tests read it to assert
    determinism.
    """

    def __init__(self, seed: int = 0, specs: Sequence[FaultSpec] = ()):
        self.seed = int(seed)
        self.specs = tuple(specs)
        for s in self.specs:
            if not isinstance(s, FaultSpec):
                raise TypeError(f"specs must be FaultSpec, got {type(s)}")
        self.reset()

    def reset(self) -> None:
        """Restore the pristine seeded state (counts, rng, event log)."""
        self._rng = np.random.default_rng(self.seed)
        self._calls = [0] * len(self.specs)
        self._fires = [0] * len(self.specs)
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # firing machinery
    # ------------------------------------------------------------------
    def _fire(self, site: str, structural: bool) -> Optional[FaultSpec]:
        """Advance every matching spec's call counter; return the first
        spec that fires (all matching counters advance regardless, so
        one spec firing never perturbs another's schedule)."""
        fired: Optional[FaultSpec] = None
        fired_i = -1
        for i, spec in enumerate(self.specs):
            if structural == (spec.kind == "soft"):
                continue
            if not fnmatchcase(site, spec.site):
                continue
            call = self._calls[i]
            self._calls[i] = call + 1
            if spec.max_fires is not None and self._fires[i] >= spec.max_fires:
                continue
            hit = call in spec.at_calls
            if spec.probability > 0.0:
                # always consume the draw so schedules stay aligned
                hit = (self._rng.random() < spec.probability) or hit
            if hit and fired is None:
                fired, fired_i = spec, i
        if fired is not None:
            self._fires[fired_i] += 1
            self._record(site, fired, fired_i)
        return fired

    def _record(self, site: str, spec: FaultSpec, spec_index: int) -> None:
        event = FaultEvent(
            site=site, kind=spec.kind, spec_index=spec_index,
            call_index=self._calls[spec_index] - 1,
            detail=spec.payload if spec.kind == "soft" else spec.kind,
        )
        self.events.append(event)
        # surface the incident as an observation event when a profile
        # session is live (fault spans are how incidents reach reports)
        from repro.obs import recorder as _obs

        if _obs.ACTIVE is not None:
            _obs.ACTIVE.record_event(
                "fault.injected", "fault", site=site, kind=spec.kind,
                detail=event.detail,
            )

    def _raise(self, site: str, spec: FaultSpec) -> None:
        exc = _KIND_ERRORS[spec.kind]
        raise exc(f"[injected fault] {spec.kind} at {site} "
                  f"(seed={self.seed})")

    # ------------------------------------------------------------------
    # runtime hooks
    # ------------------------------------------------------------------
    def on_alloc(self, name: str, nbytes: int) -> None:
        """Allocation boundary; may raise a structural fault."""
        spec = self._fire(f"alloc:{name}", structural=True)
        if spec is not None:
            self._raise(f"alloc:{name}", spec)

    def on_launch(self, kernel: str) -> None:
        """Launch entry; may raise a structural fault."""
        spec = self._fire(f"launch:{kernel}", structural=True)
        if spec is not None:
            self._raise(f"launch:{kernel}", spec)

    def on_launch_exit(self, kernel: str, args: Sequence) -> None:
        """Launch exit; may apply a soft corruption to the launch's
        writable output (any buffer named ``y``/``out``)."""
        spec = self._fire(f"launch:{kernel}", structural=False)
        if spec is None:
            return
        for buf in args:
            data = getattr(buf, "data", None)
            if data is None or getattr(buf, "name", "") not in ("y", "out"):
                continue
            flat = data.reshape(-1)
            if not flat.size:
                continue
            i = int(self._rng.integers(flat.size))
            if spec.payload == "nan":
                flat[i] = np.nan
            elif spec.payload == "flip":
                flat[i] = -flat[i] if flat[i] != 0 else 1.0
            else:  # nudge
                flat[i] = flat[i] * (1.0 + 2.0 ** -20) if flat[i] != 0 \
                    else 2.0 ** -20
            self.events[-1].detail = f"{spec.payload}@{i}"
            return

    def on_phase(self, phase: str) -> None:
        """Runner phase boundary (``<runner>.<prepare|run>``)."""
        spec = self._fire(f"phase:{phase}", structural=True)
        if spec is not None:
            self._raise(f"phase:{phase}", spec)

    # ------------------------------------------------------------------
    def soft_events_since(self, mark: int) -> int:
        """Soft corruptions fired since :pyfunc:`len(events)` was
        ``mark`` — how the resilient executor invalidates an attempt
        whose numbers were touched."""
        return sum(1 for e in self.events[mark:] if e.kind == "soft")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe injector state (config + fired events)."""
        return {
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
            "events": [e.to_dict() for e in self.events],
        }


#: the currently-injecting fault injector, or ``None`` (the default:
#: off).  Runtime hooks read this exact attribute and do nothing else
#: on the disabled path.
ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The active injector, or ``None`` when injection is off."""
    return ACTIVE


@contextlib.contextmanager
def inject(injector: Optional[FaultInjector]) -> Iterator[Optional[FaultInjector]]:
    """Activate ``injector`` for the enclosed code (nestable; pass
    ``None`` to *suspend* injection inside an injecting region — the
    chaos harness uses that for its fault-free reference runs)."""
    global ACTIVE
    prev = ACTIVE
    ACTIVE = injector
    try:
        yield injector
    finally:
        ACTIVE = prev

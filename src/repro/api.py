"""The ``repro`` facade: one import, three verbs.

High-level entry points over the whole stack, re-exported from the
package root::

    import repro

    run = repro.spmv(A, x)                    # y, trace, derived metrics
    runner = repro.build(A, format="crsd")    # reusable prepared runner
    report = repro.profile(A)                 # spans + metrics + exporters

``A`` may be anything matrix-like the library understands: a
:class:`~repro.formats.coo.COOMatrix` (or any
:class:`~repro.formats.base.SparseFormat`), a
:class:`~repro.core.crsd.CRSDMatrix`, a dense 2-D ``numpy`` array, or a
scipy-style object exposing ``tocoo()``.

``format="auto"`` picks the cheapest format by the analytic traffic
model (:mod:`repro.perf.analytic`) — the same bytes-first argument the
paper makes, without running a kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.formats.base import SparseFormat
from repro.formats.coo import COOMatrix
from repro.gpu_kernels.base import GPUSpMV, SpMVRun
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.validation import validate_matrix, validate_vector

__all__ = ["spmv", "build", "profile", "auto_format"]

#: formats ``build``/``spmv`` accept (``auto`` resolves to one of these)
FORMATS = ("crsd", "dia", "ell", "csr", "hyb")


def _as_coo(matrix) -> COOMatrix:
    """Coerce any supported matrix carrier to COO."""
    if isinstance(matrix, COOMatrix):
        return matrix
    if isinstance(matrix, (CRSDMatrix, SparseFormat)):
        return matrix.to_coo()
    if isinstance(matrix, np.ndarray):
        if matrix.ndim != 2:
            raise ValueError(
                f"dense matrix must be 2-D, got shape {matrix.shape}")
        from repro.formats.convert import from_dense

        return from_dense(matrix, "coo")
    if hasattr(matrix, "tocoo"):  # scipy.sparse duck type
        m = matrix.tocoo()
        return COOMatrix(
            np.asarray(m.row), np.asarray(m.col), np.asarray(m.data),
            m.shape,
        )
    raise TypeError(
        f"cannot interpret {type(matrix).__name__} as a sparse matrix; "
        "expected COOMatrix, CRSDMatrix, a SparseFormat, a dense 2-D "
        "ndarray, or an object with .tocoo()"
    )


def auto_format(matrix, precision: str = "double",
                device: DeviceSpec = TESLA_C2050,
                mrows: int = 128) -> str:
    """Pick the format moving the fewest analytic bytes per SpMV.

    Builds the candidate formats' *descriptions* (cheap — no kernels)
    and compares :func:`repro.perf.analytic.estimate_traffic`; formats
    whose device footprint exceeds memory are disqualified (the paper's
    DIA/double OOM case).

    The decision is memoised in the process-wide
    :class:`~repro.serve.cache.PlanCache` keyed by the matrix's content
    fingerprint, so asking again for a matrix already prepared
    in-session never redoes the structural analysis.
    """
    from repro.serve.cache import default_cache

    return default_cache().auto_format(matrix, precision, device, mrows)


def _auto_format_impl(matrix, precision: str = "double",
                      device: DeviceSpec = TESLA_C2050,
                      mrows: int = 128) -> str:
    """The uncached format decision behind :func:`auto_format`."""
    from repro.formats.csr import CSRMatrix
    from repro.formats.dia import DIAMatrix
    from repro.formats.ell import ELLMatrix
    from repro.formats.footprint import footprint_bytes
    from repro.perf.analytic import estimate_traffic

    coo = _as_coo(matrix)
    candidates = {
        "crsd": lambda: CRSDMatrix.from_coo(
            coo, mrows=mrows, wavefront_size=compatible_wavefront(mrows)),
        "dia": lambda: DIAMatrix.from_coo(coo),
        "ell": lambda: ELLMatrix.from_coo(coo),
        "csr": lambda: CSRMatrix.from_coo(coo),
    }
    best_fmt, best_bytes = "csr", float("inf")
    for fmt, make in candidates.items():
        try:
            m = make()
            if footprint_bytes(m, precision) > device.global_mem_bytes:
                continue
            est = estimate_traffic(m, precision)
        except (ValueError, TypeError, MemoryError):
            continue
        total = est.load_bytes + est.store_bytes
        if total < best_bytes:
            best_fmt, best_bytes = fmt, total
    return best_fmt


def build(
    matrix,
    format: str = "crsd",
    *,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    mrows: int = 128,
    use_local_memory: bool = True,
) -> GPUSpMV:
    """Build a prepared GPU runner for ``matrix`` in ``format``.

    ``format="auto"`` selects via :func:`auto_format`.  A
    :class:`~repro.core.crsd.CRSDMatrix` passed with ``format="crsd"``
    is used as-is (its build parameters win over ``mrows``).
    """
    from repro.bench.runner import _build_runners

    validate_matrix(matrix)
    if format == "auto":
        format = auto_format(matrix, precision, device, mrows)
    if format not in FORMATS:
        raise ValueError(
            f"unknown format {format!r}; expected one of "
            f"{FORMATS + ('auto',)}")
    if isinstance(matrix, CRSDMatrix) and format == "crsd":
        from repro.gpu_kernels import CrsdSpMV

        runner = CrsdSpMV(matrix, device=device, precision=precision,
                          use_local_memory=use_local_memory)
    else:
        runner = _build_runners(
            _as_coo(matrix), device, precision, [format], mrows,
            use_local_memory,
        )[format]
    return runner.prepare()


def spmv(
    A,
    x: np.ndarray,
    format: str = "crsd",
    *,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    mrows: int = 128,
    use_local_memory: bool = True,
    trace: bool = True,
    resilience=None,
) -> SpMVRun:
    """One-shot ``y = A @ x`` on the simulated device.

    Returns an :class:`~repro.gpu_kernels.base.SpMVRun` whose
    ``metrics`` field carries the :mod:`repro.obs` derived metrics
    (bytes moved, coalescing, L2 hit rate, roofline placement) when
    tracing is on.  For repeated products over one matrix, prefer
    ``repro.build(...)`` and reuse the runner.

    ``resilience`` (a :class:`repro.resilience.Policy`, or ``True`` for
    the default policy) routes the call through the resilient
    execution layer: faults are retried with deterministic backoff and
    the format degrades down the fallback ladder instead of raising;
    the run's ``resilience`` field then carries the
    :class:`~repro.resilience.engine.IncidentReport`.  The default
    ``None`` takes the classic direct path with zero resilience
    overhead.
    """
    if resilience is not None and resilience is not False:
        return _resilient_facade_spmv(
            A, x, format, device=device, precision=precision, mrows=mrows,
            use_local_memory=use_local_memory, trace=trace,
            resilience=resilience)
    runner = build(A, format, device=device, precision=precision,
                   mrows=mrows, use_local_memory=use_local_memory)
    x = validate_vector(x, runner.ncols)
    run = runner.run(x, trace=trace)
    if trace:
        from repro.obs.metrics import derive_metrics
        from repro.perf.costmodel import predict_gpu_time

        nnz = _nnz_of(A, runner)
        seconds = predict_gpu_time(run.trace, device, precision).total
        run.metrics = derive_metrics(run.trace, device, precision,
                                     nnz=nnz, seconds=seconds)
    return run


def _resilient_facade_spmv(
    A, x, format, *, device, precision, mrows, use_local_memory, trace,
    resilience,
) -> SpMVRun:
    """The ``resilience=`` branch of :func:`spmv`: validate, delegate
    to the ladder, then derive the same metrics the direct path does."""
    from repro.resilience.engine import resilient_spmv
    from repro.resilience.policy import Policy

    policy = resilience if isinstance(resilience, Policy) else Policy()
    validate_matrix(A)
    if format == "auto":
        format = auto_format(A, precision, device, mrows)
    coo = _as_coo(A)
    x = validate_vector(x, coo.ncols)
    run = resilient_spmv(
        coo, x, format, device=device, precision=precision, mrows=mrows,
        use_local_memory=use_local_memory, policy=policy, trace=trace)
    if trace:
        from repro.obs.metrics import derive_metrics
        from repro.perf.costmodel import predict_gpu_time

        seconds = predict_gpu_time(run.trace, device, precision).total
        run.metrics = derive_metrics(run.trace, device, precision,
                                     nnz=int(coo.nnz), seconds=seconds)
    return run


def _nnz_of(matrix, runner) -> Optional[int]:
    """True nonzero count of the product's matrix, if discoverable."""
    for obj in (matrix, getattr(runner, "matrix", None)):
        nnz = getattr(obj, "nnz", None)
        if nnz is not None:
            return int(nnz)
    if isinstance(matrix, np.ndarray):
        return int(np.count_nonzero(matrix))
    return None


def profile(
    matrix,
    name: str = "matrix",
    *,
    formats: Sequence[str] = ("crsd",),
    executors: Sequence[str] = ("batched", "pergroup"),
    precisions: Sequence[str] = ("double",),
    device: DeviceSpec = TESLA_C2050,
    mrows: int = 128,
    size_scale: float = 1.0,
    seed: int = 0,
):
    """Profile ``matrix`` and return a
    :class:`~repro.obs.report.ProfileReport` (spans, metric entries,
    ``report.export(dir)`` for the JSON/CSV/Chrome-trace artifacts).
    """
    from repro.obs.profiler import profile_matrix

    return profile_matrix(
        _as_coo(matrix), name, formats=formats, executors=executors,
        precisions=precisions, device=device, mrows=mrows,
        size_scale=size_scale, seed=seed,
    )

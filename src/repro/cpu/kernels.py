"""CPU SpMV kernels (MKL-like) with exact byte accounting.

Each kernel computes the true result (NumPy) and models its execution
time from the bytes its access pattern must move:

- **CSR** streams ``indptr``/``indices``/``data`` once and gathers
  ``x`` irregularly; the gather derates achievable bandwidth
  (``CPU_CSR_GATHER_EFFICIENCY``).  With ``threads > 1`` rows are
  partitioned and bandwidth follows the machine's thread-scaling
  curve — at 8 threads the two sockets saturate, which is exactly the
  MKL behaviour the paper compares against.
- **DIA** streams the whole padded slab — including every fill zero —
  which is why the paper measures CRSD/DIA CPU speedups near 200 on
  s3dkt3m2-class matrices.
- **CRSD (CPU)** streams the compact diagonal slab plus the scatter
  ELL; used by the Table VI serial comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.crsd import CRSDMatrix
from repro.cpu.machine import CPUSpec, XEON_X5550_2S
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.footprint import value_itemsize
from repro.perf import calibration as cal


@dataclass
class CpuSpMVResult:
    """Result and modelled time of one CPU SpMV."""

    y: np.ndarray
    seconds: float
    bytes_streamed: int
    threads: int


class _CpuKernel:
    def __init__(
        self,
        machine: CPUSpec = XEON_X5550_2S,
        precision: str = "double",
        threads: int = 1,
    ):
        self.machine = machine
        self.precision = precision
        self.itemsize = value_itemsize(precision)
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        self.threads = threads

    def _time(self, bytes_streamed: int, flops: int, efficiency: float) -> float:
        bw = self.machine.bandwidth_gbs(self.threads) * 1e9 * efficiency
        t_mem = bytes_streamed / bw
        peak = self.machine.peak_gflops(self.precision, self.threads) * 1e9
        t_comp = flops / peak
        return max(t_mem, t_comp)


class CpuCsrSpMV(_CpuKernel):
    """MKL-like CSR SpMV (``mkl_dcsrmv`` analogue)."""

    name = "cpu_csr"

    def __init__(self, matrix: CSRMatrix, **kwargs):
        super().__init__(**kwargs)
        self.matrix = matrix

    def bytes_per_spmv(self) -> int:
        """Exact bytes one SpMV streams (see the module docstring)."""
        m = self.matrix
        isz = self.itemsize
        # x gathers on a diagonal-ish matrix mostly hit the L2/L3 cache
        # (the working set trails the row cursor); charge at most a few
        # full passes over x
        x_bytes = min(m.nnz, 4 * m.ncols) * isz
        return (
            m.nnz * (isz + 4)        # data + indices
            + (m.nrows + 1) * 4      # indptr
            + x_bytes
            + m.nrows * isz          # y store
        )

    def run(self, x: np.ndarray) -> CpuSpMVResult:
        """Compute ``A @ x`` and model its execution time."""
        y = self.matrix.matvec(np.asarray(x, dtype=np.float64))
        nbytes = self.bytes_per_spmv()
        secs = self._time(nbytes, 2 * self.matrix.nnz, cal.CPU_CSR_GATHER_EFFICIENCY)
        return CpuSpMVResult(y=y, seconds=secs, bytes_streamed=nbytes, threads=self.threads)


class CpuDiaSpMV(_CpuKernel):
    """Serial DIA SpMV (MKL's DIA kernel is serial, Section IV)."""

    name = "cpu_dia"

    def __init__(self, matrix: DIAMatrix, **kwargs):
        kwargs.setdefault("threads", 1)
        super().__init__(**kwargs)
        if self.threads != 1:
            raise ValueError("the MKL DIA kernel is serial (paper, Section IV)")
        self.matrix = matrix

    def bytes_per_spmv(self) -> int:
        """Exact bytes one SpMV streams (see the module docstring)."""
        m = self.matrix
        isz = self.itemsize
        return (
            m.stored_elements * isz   # the full padded slab, fill included
            + m.ndiags * 4            # offsets
            + m.in_matrix_elements * isz  # x traffic along each diagonal
            + m.nrows * isz * 2       # y read-modify-write per diagonal pass
        )

    def run(self, x: np.ndarray) -> CpuSpMVResult:
        """Compute ``A @ x`` and model its execution time."""
        y = self.matrix.matvec(np.asarray(x, dtype=np.float64))
        nbytes = self.bytes_per_spmv()
        secs = self._time(nbytes, 2 * self.matrix.in_matrix_elements,
                          cal.CPU_DIA_STREAM_EFFICIENCY)
        return CpuSpMVResult(y=y, seconds=secs, bytes_streamed=nbytes, threads=1)


class CpuDcsrSpMV(_CpuKernel):
    """Delta-compressed CSR SpMV on the CPU (Willcock & Lumsdaine's
    DCSR argument: SpMV is bandwidth-bound, so shrinking the index
    stream is a speedup; decode is hidden behind the memory wall)."""

    name = "cpu_dcsr"

    def __init__(self, matrix, **kwargs):
        from repro.formats.dcsr import DeltaCSRMatrix

        super().__init__(**kwargs)
        if not isinstance(matrix, DeltaCSRMatrix):
            raise TypeError("CpuDcsrSpMV needs a DeltaCSRMatrix")
        self.matrix = matrix

    def bytes_per_spmv(self) -> int:
        """Exact bytes one SpMV streams (encoded stream, not indices)."""
        m = self.matrix
        isz = self.itemsize
        x_bytes = min(m.nnz, 4 * m.ncols) * isz
        value_bytes = (
            m.data.size * isz
            if m.value_table is None
            else m.data.size * m.data.dtype.itemsize + m.value_table.size * isz
        )
        return (
            value_bytes
            + m.stream.size            # the compressed index stream
            + (m.nrows + 1) * 4        # indptr
            + x_bytes
            + m.nrows * isz
        )

    def run(self, x: np.ndarray) -> CpuSpMVResult:
        """Compute ``A @ x`` and model its execution time."""
        y = self.matrix.matvec(np.asarray(x, dtype=np.float64))
        nbytes = self.bytes_per_spmv()
        secs = self._time(nbytes, 2 * self.matrix.nnz,
                          cal.CPU_CSR_GATHER_EFFICIENCY)
        return CpuSpMVResult(y=y, seconds=secs, bytes_streamed=nbytes,
                             threads=self.threads)


class CpuCrsdSpMV(_CpuKernel):
    """CRSD SpMV on the CPU (the paper's OpenMP analogue).

    Streams the compact diagonal slab plus the scatter ELL; the x
    accesses along each diagonal are sequential, so no gather derate
    applies to them.
    """

    name = "cpu_crsd"

    def __init__(self, matrix: CRSDMatrix, **kwargs):
        super().__init__(**kwargs)
        self.matrix = matrix

    def bytes_per_spmv(self) -> int:
        """Exact bytes one SpMV streams (see the module docstring)."""
        m = self.matrix
        isz = self.itemsize
        return (
            m.dia_val.size * isz           # compact slab (little fill)
            + m.dia_val.size * isz         # x stream per diagonal slot
            + m.scatter_val.size * (isz * 2 + 4)  # scatter ELL + its x gather
            + m.nrows * isz                # y store
        )

    def run(self, x: np.ndarray) -> CpuSpMVResult:
        """Compute ``A @ x`` and model its execution time."""
        y = self.matrix.matvec(np.asarray(x, dtype=np.float64))
        nbytes = self.bytes_per_spmv()
        secs = self._time(nbytes, 2 * self.matrix.stored_elements,
                          cal.CPU_CRSD_STREAM_EFFICIENCY)
        return CpuSpMVResult(y=y, seconds=secs, bytes_streamed=nbytes, threads=self.threads)

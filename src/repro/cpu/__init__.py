"""MKL-like CPU SpMV baselines and the Xeon X5550 machine model.

The paper's CPU comparison uses Intel MKL 10.2 on a two-socket
quad-core Xeon X5550 system: parallel CSR (1 and 8 threads) and serial
DIA.  We provide functionally correct CSR/DIA/CRSD CPU kernels (NumPy)
plus a calibrated bandwidth model that converts each kernel's exact
byte traffic into time — CPU SpMV is memory-bound, and at 8 threads
MKL CSR simply saturates the two sockets' controllers.
"""

from repro.cpu.machine import CPUSpec, XEON_X5550_2S
from repro.cpu.kernels import (
    CpuCsrSpMV,
    CpuDiaSpMV,
    CpuCrsdSpMV,
    CpuSpMVResult,
)

__all__ = [
    "CPUSpec",
    "XEON_X5550_2S",
    "CpuCsrSpMV",
    "CpuDiaSpMV",
    "CpuCrsdSpMV",
    "CpuSpMVResult",
]

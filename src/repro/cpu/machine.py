"""CPU machine model (paper Table IV: 2-socket Xeon X5550, 8 GB)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf import calibration as cal


@dataclass(frozen=True)
class CPUSpec:
    """Static description of a multi-socket CPU system.

    Attributes
    ----------
    sockets, cores_per_socket, clock_ghz:
        Topology.
    socket_bw_gbs:
        Peak memory bandwidth per socket.
    per_core_bw_gbs:
        Sustained bandwidth a single core can draw (one core cannot
        saturate the socket).
    flops_per_cycle_dp / flops_per_cycle_sp:
        SSE2-class SIMD: 4 DP / 8 SP flops per cycle per core on
        Nehalem.
    """

    name: str
    sockets: int
    cores_per_socket: int
    clock_ghz: float
    socket_bw_gbs: float
    per_core_bw_gbs: float
    flops_per_cycle_dp: int = 4
    flops_per_cycle_sp: int = 8

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def bandwidth_gbs(self, threads: int) -> float:
        """Sustained aggregate bandwidth available to ``threads``.

        Threads scale linearly at ``per_core_bw_gbs`` until the socket
        controllers saturate; threads spread across sockets round-robin.
        """
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        threads = min(threads, self.total_cores)
        per_thread_total = threads * self.per_core_bw_gbs
        # threads are spread over sockets, unlocking each socket's share
        sockets_used = min(self.sockets, threads)
        ceiling = sockets_used * self.socket_bw_gbs * cal.CPU_BW_EFFICIENCY
        return min(per_thread_total, ceiling)

    def peak_gflops(self, precision: str, threads: int) -> float:
        """Aggregate SIMD peak of ``threads`` cores at ``precision``."""
        threads = min(max(threads, 1), self.total_cores)
        per_cycle = (
            self.flops_per_cycle_dp
            if precision.lower() in ("double", "fp64")
            else self.flops_per_cycle_sp
        )
        return threads * self.clock_ghz * per_cycle


#: the paper's CPU platform
XEON_X5550_2S = CPUSpec(
    name="2 x Intel Xeon X5550 (Nehalem, 2.67 GHz)",
    sockets=2,
    cores_per_socket=4,
    clock_ghz=2.67,
    socket_bw_gbs=cal.CPU_SOCKET_BW_GBS,
    per_core_bw_gbs=cal.CPU_PER_CORE_BW_GBS,
)

"""Row-wise CPU+GPU hybrid SpMV (the paper's planned "hybrid
programming").

The matrix is split at a row boundary: the top part runs as CRSD on
the (simulated) GPU, the bottom part as CSR on the CPU model, and both
halves read the full source vector.  Since the two devices work
concurrently, the hybrid time is ``max(T_gpu(f), T_cpu(1-f))`` plus the
transfers the GPU half still owes; :func:`optimal_split` picks the
fraction ``f`` that balances the two from the modelled rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.crsd import CRSDMatrix
from repro.cpu.kernels import CpuCsrSpMV
from repro.cpu.machine import CPUSpec, XEON_X5550_2S
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.hybrid.transfer import PCIE_GEN2_X16, PCIeSpec, transfer_time
from repro.obs.recorder import maybe_span
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.perf.costmodel import predict_gpu_time


def split_rows(coo: COOMatrix, boundary: int) -> Tuple[COOMatrix, COOMatrix]:
    """Split a matrix at ``boundary``: rows [0, boundary) and
    [boundary, nrows).  Both halves keep the full column space (they
    read the same x); the bottom half's rows are re-based to 0."""
    if not 0 <= boundary <= coo.nrows:
        raise ValueError(f"boundary {boundary} out of [0, {coo.nrows}]")
    top_mask = coo.rows < boundary
    top = COOMatrix(
        coo.rows[top_mask], coo.cols[top_mask], coo.vals[top_mask],
        (max(boundary, 1), coo.ncols),
    )
    bot_mask = ~top_mask
    bot = COOMatrix(
        coo.rows[bot_mask].astype(np.int64) - boundary,
        coo.cols[bot_mask],
        coo.vals[bot_mask],
        (max(coo.nrows - boundary, 1), coo.ncols),
    )
    return top, bot


def optimal_split(
    gpu_seconds_full: float,
    cpu_seconds_full: float,
) -> float:
    """Balance ``f * T_gpu == (1 - f) * T_cpu`` (both times for the
    whole matrix on the respective device; work scales with rows for
    the row-uniform matrices this targets)."""
    if gpu_seconds_full <= 0 or cpu_seconds_full <= 0:
        raise ValueError("device times must be positive")
    return cpu_seconds_full / (gpu_seconds_full + cpu_seconds_full)


@dataclass
class HybridResult:
    """Functional result and modelled timing of one hybrid SpMV."""

    y: np.ndarray
    gpu_seconds: float
    cpu_seconds: float
    transfer_seconds: float
    gpu_fraction: float

    @property
    def total_seconds(self) -> float:
        return max(self.gpu_seconds, self.cpu_seconds) + self.transfer_seconds


class HybridSpMV:
    """CPU+GPU hybrid SpMV runner.

    Parameters
    ----------
    coo:
        The matrix.
    gpu_fraction:
        Fraction of rows on the GPU; ``None`` picks the modelled
        optimum automatically (two probe runs).
    include_transfers:
        Charge per-SpMV x/y transfers for the GPU half (the paper's
        pessimistic usage; resident vectors pay nothing).
    """

    def __init__(
        self,
        coo: COOMatrix,
        gpu_fraction: Optional[float] = None,
        mrows: int = 128,
        device: DeviceSpec = TESLA_C2050,
        machine: CPUSpec = XEON_X5550_2S,
        precision: str = "double",
        cpu_threads: int = 8,
        include_transfers: bool = False,
        pcie: PCIeSpec = PCIE_GEN2_X16,
        size_scale: float = 1.0,
    ):
        self.coo = coo
        self.device = device
        self.machine = machine
        self.precision = precision
        self.cpu_threads = cpu_threads
        self.include_transfers = include_transfers
        self.pcie = pcie
        self.mrows = mrows
        self.size_scale = size_scale
        if gpu_fraction is None:
            gpu_fraction = self._probe_optimal_fraction()
        if not 0.0 < gpu_fraction <= 1.0:
            raise ValueError(f"gpu_fraction must be in (0, 1], got {gpu_fraction}")
        self.gpu_fraction = gpu_fraction
        # align the boundary to mrows so the GPU part keeps whole segments
        if gpu_fraction >= 1.0:
            boundary = coo.nrows
        else:
            boundary = int(round(coo.nrows * gpu_fraction / mrows)) * mrows
        self.boundary = min(max(boundary, mrows), coo.nrows)
        top, bot = split_rows(coo, self.boundary)
        self._gpu = CrsdSpMV(
            CRSDMatrix.from_coo(top, mrows=mrows), device=device,
            precision=precision,
        )
        self._cpu = (
            CpuCsrSpMV(CSRMatrix.from_coo(bot), machine=machine,
                       precision=precision, threads=cpu_threads)
            if self.boundary < coo.nrows
            else None
        )

    def _probe_optimal_fraction(self) -> float:
        rng = np.random.default_rng(0)
        x = rng.standard_normal(self.coo.ncols)
        gpu = CrsdSpMV(
            CRSDMatrix.from_coo(self.coo, mrows=self.mrows),
            device=self.device, precision=self.precision,
        )
        run = gpu.run(x)
        t_gpu = predict_gpu_time(
            run.trace, self.device, self.precision,
            size_scale=self.size_scale,
        ).total
        cpu = CpuCsrSpMV(
            CSRMatrix.from_coo(self.coo), machine=self.machine,
            precision=self.precision, threads=self.cpu_threads,
        )
        t_cpu = cpu.run(x).seconds
        f = optimal_split(t_gpu, t_cpu)
        # the CPU half's cost does not scale linearly with rows (its x
        # gather spans the full column space); rebalance against the
        # actual byte model of the candidate bottom part
        for _ in range(4):
            boundary = min(
                max(int(round(self.coo.nrows * f / self.mrows)) * self.mrows,
                    self.mrows),
                self.coo.nrows,
            )
            if boundary >= self.coo.nrows:
                return 1.0
            _, bot = split_rows(self.coo, boundary)
            t_bot = CpuCsrSpMV(
                CSRMatrix.from_coo(bot), machine=self.machine,
                precision=self.precision, threads=self.cpu_threads,
            ).run(x).seconds
            t_top = t_gpu * boundary / self.coo.nrows
            if t_bot <= t_top:
                break
            # shift rows toward the GPU proportionally to the imbalance
            f = min(1.0, f + (1 - f) * (1 - t_top / t_bot) * 0.8)
        return f

    def run(self, x: np.ndarray) -> HybridResult:
        """Execute both halves functionally; model the combined time."""
        x = np.asarray(x, dtype=np.float64)
        y = np.zeros(self.coo.nrows, dtype=np.float64)
        with maybe_span("hybrid.spmv", "op",
                        gpu_fraction=self.boundary / self.coo.nrows,
                        boundary=self.boundary):
            with maybe_span("hybrid.gpu_half", "op",
                            rows=self.boundary):
                run = self._gpu.run(x)
            y[: self.boundary] = run.y[: self.boundary]
            launches = 2 if self._gpu.matrix.num_scatter_rows else 1
            t_gpu = predict_gpu_time(
                run.trace, self.device, self.precision,
                num_launches=launches, size_scale=self.size_scale,
            ).total
            t_cpu = 0.0
            if self._cpu is not None:
                with maybe_span("hybrid.cpu_half", "op",
                                rows=self.coo.nrows - self.boundary):
                    cres = self._cpu.run(x)
                y[self.boundary:] = cres.y
                t_cpu = cres.seconds
            t_xfer = 0.0
            if self.include_transfers:
                t_xfer = transfer_time(self.boundary, self.coo.ncols,
                                       self.precision, self.pcie)
        return HybridResult(
            y=y,
            gpu_seconds=t_gpu,
            cpu_seconds=t_cpu,
            transfer_seconds=t_xfer,
            gpu_fraction=self.boundary / self.coo.nrows,
        )

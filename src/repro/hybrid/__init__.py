"""Conclusion-section extensions: transfers and CPU+GPU hybrid SpMV.

Section VI of the paper observes that the GPU advantage "will become
less if we need transfer the source vector x and destination vector y
between GPU and CPU for each SpMV operation", and plans "to divide the
task for both GPU and CPU to implement the hybrid programming".  This
package implements both:

- :mod:`repro.hybrid.transfer` — a PCIe model and per-SpMV transfer
  accounting;
- :mod:`repro.hybrid.split`    — a row-wise CPU+GPU split with a
  modelled optimal split fraction, functional execution of both halves
  and a combined time estimate.
"""

from repro.hybrid.transfer import PCIeSpec, PCIE_GEN2_X16, transfer_time, spmv_time_with_transfers
from repro.hybrid.split import HybridSpMV, optimal_split

__all__ = [
    "PCIeSpec",
    "PCIE_GEN2_X16",
    "transfer_time",
    "spmv_time_with_transfers",
    "HybridSpMV",
    "optimal_split",
]

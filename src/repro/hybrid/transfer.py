"""Host-device transfer model (PCIe).

The C2050 sits on PCIe 2.0 x16: ~8 GB/s peak, ~6 GB/s effective for
pinned transfers, with a fixed per-transfer latency.  An SpMV whose x
and y must cross the bus every operation moves ``(ncols + nrows) x
itemsize`` bytes for a kernel that itself only moves a few times that —
which is exactly why the paper's conclusion tempers the GPU numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.footprint import value_itemsize


@dataclass(frozen=True)
class PCIeSpec:
    """Host-device link model."""

    name: str
    bandwidth_gbs: float
    latency_us: float

    def time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` one way."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbs * 1e9)


#: effective PCIe 2.0 x16 (the C2050's link)
PCIE_GEN2_X16 = PCIeSpec(name="PCIe 2.0 x16", bandwidth_gbs=6.0, latency_us=10.0)


def transfer_time(
    nrows: int,
    ncols: int,
    precision: str = "double",
    pcie: PCIeSpec = PCIE_GEN2_X16,
    transfer_x: bool = True,
    transfer_y: bool = True,
) -> float:
    """Seconds to ship x down and y back for one SpMV."""
    isz = value_itemsize(precision)
    t = 0.0
    if transfer_x:
        t += pcie.time(ncols * isz)
    if transfer_y:
        t += pcie.time(nrows * isz)
    return t


def spmv_time_with_transfers(
    kernel_seconds: float,
    nrows: int,
    ncols: int,
    precision: str = "double",
    pcie: PCIeSpec = PCIE_GEN2_X16,
) -> float:
    """Total per-SpMV time when x and y cross the bus every operation
    (the pessimistic usage pattern of the paper's conclusion; a Krylov
    solver that keeps its vectors resident pays none of this)."""
    return kernel_seconds + transfer_time(nrows, ncols, precision, pcie)

"""Reverse Cuthill–McKee reordering, from scratch.

RCM relabels the rows/columns of a (structurally symmetrised) matrix
by a breadth-first traversal that visits neighbours in increasing
degree order, then reverses the numbering — the classic bandwidth
minimiser.  After RCM, a scattered grid operator collapses back onto a
narrow band, exactly the structure DIA/CRSD want.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import numpy as np

from repro.formats.coo import COOMatrix


def _adjacency(coo: COOMatrix) -> Tuple[np.ndarray, np.ndarray]:
    """CSR-style adjacency of the symmetrised pattern, self-loops
    removed; returns ``(indptr, indices)``."""
    if coo.nrows != coo.ncols:
        raise ValueError("reordering needs a square matrix")
    n = coo.nrows
    rows = np.concatenate([coo.rows, coo.cols]).astype(np.int64)
    cols = np.concatenate([coo.cols, coo.rows]).astype(np.int64)
    off_diag = rows != cols
    rows, cols = rows[off_diag], cols[off_diag]
    # dedupe
    keys = rows * n + cols
    keys = np.unique(keys)
    rows, cols = keys // n, keys % n
    order = np.argsort(rows, kind="stable")
    rows, cols = rows[order], cols[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
    return indptr, cols


def rcm_permutation(coo: COOMatrix) -> np.ndarray:
    """The RCM permutation ``perm``: new label ``i`` holds old vertex
    ``perm[i]``.

    Components are processed in order of their minimum-degree starting
    vertex; isolated vertices keep relative order at the end of their
    component sweep.
    """
    n = coo.nrows
    indptr, indices = _adjacency(coo)
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order: List[int] = []
    # stable component starts: lowest degree first, index as tie-break
    starts = np.lexsort((np.arange(n), degree))
    for s in starts:
        if visited[s]:
            continue
        visited[s] = True
        q = deque([int(s)])
        while q:
            v = q.popleft()
            order.append(v)
            nbrs = indices[indptr[v]:indptr[v + 1]]
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size:
                nbrs = nbrs[np.lexsort((nbrs, degree[nbrs]))]
                visited[nbrs] = True
                q.extend(int(u) for u in nbrs)
    perm = np.array(order[::-1], dtype=np.int64)
    return perm


def permute(coo: COOMatrix, perm: np.ndarray) -> COOMatrix:
    """Symmetric permutation ``B = P A P^T`` with ``B[i, j] =
    A[perm[i], perm[j]]``.

    SpMV equivalence: ``B @ (P x) == P (A @ x)`` where ``(P x)[i] =
    x[perm[i]]`` — asserted by the tests.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = coo.nrows
    if coo.nrows != coo.ncols:
        raise ValueError("symmetric permutation needs a square matrix")
    if sorted(perm.tolist()) != list(range(n)):
        raise ValueError("perm must be a permutation of range(nrows)")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n)
    return COOMatrix(inv[coo.rows.astype(np.int64)],
                     inv[coo.cols.astype(np.int64)], coo.vals, coo.shape)


def permute_vector(x: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """``(P x)[i] = x[perm[i]]``."""
    return np.asarray(x)[np.asarray(perm, dtype=np.int64)]


def unpermute_vector(y: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Inverse of :func:`permute_vector`."""
    perm = np.asarray(perm, dtype=np.int64)
    out = np.empty_like(np.asarray(y))
    out[perm] = y
    return out


def bandwidth(coo: COOMatrix) -> int:
    """max |col - row| over the nonzeros (0 for diagonal/empty)."""
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.offsets_of_entries()).max())


def profile(coo: COOMatrix) -> int:
    """Sum over rows of the distance from the leftmost nonzero to the
    diagonal (the envelope size RCM minimises in aggregate)."""
    if coo.nnz == 0:
        return 0
    n = coo.nrows
    leftmost = np.full(n, np.arange(n))
    np.minimum.at(leftmost, coo.rows.astype(np.int64),
                  coo.cols.astype(np.int64))
    return int(np.maximum(0, np.arange(n) - leftmost).sum())

"""Matrix reordering: making matrices diagonal-friendly.

The related work (Section V) lists reordering among Im & Yelick's
optimisations, and it matters doubly for CRSD: the format's value is
greatest when nonzeros concentrate on few diagonals, and a bad row
numbering can scatter a physically banded operator all over the plane.
This package provides:

- :func:`~repro.reorder.rcm.rcm_permutation` — reverse Cuthill–McKee
  bandwidth reduction (BFS with degree-sorted neighbour visits,
  reversed), implemented from scratch;
- :func:`~repro.reorder.rcm.permute` / ``bandwidth`` / ``profile`` —
  symmetric permutation application and the quality metrics it
  optimises.
"""

from repro.reorder.rcm import (
    bandwidth,
    permute,
    profile,
    rcm_permutation,
)

__all__ = ["rcm_permutation", "permute", "bandwidth", "profile"]

"""Text spy plots — the paper's Fig. 1/2 as terminal output.

Renders a matrix's nonzero structure on a character grid (down-sampled
for large matrices), with optional highlighting of the rows CRSD
classifies as scatter rows.  Used by the CLI (`repro info --spy`) and
the examples to *show* why a matrix is or is not diagonal-friendly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.formats.coo import COOMatrix

#: density glyphs from sparse to dense cell coverage
_GLYPHS = " .:*#"


def spy(
    coo: COOMatrix,
    width: int = 64,
    height: Optional[int] = None,
    scatter_rows: Optional[np.ndarray] = None,
) -> str:
    """Render the sparsity pattern as text.

    Each character cell aggregates a block of the matrix; the glyph
    encodes the cell's nonzero density.  Rows listed in
    ``scatter_rows`` are marked with ``>`` in the left margin.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    height = height if height is not None else max(
        1, min(width, round(width * coo.nrows / max(coo.ncols, 1)))
    )
    if height <= 0:
        raise ValueError("height must be positive")
    width = min(width, coo.ncols)
    height = min(height, coo.nrows)

    counts = np.zeros((height, width), dtype=np.int64)
    if coo.nnz:
        r = (coo.rows.astype(np.int64) * height) // coo.nrows
        c = (coo.cols.astype(np.int64) * width) // coo.ncols
        np.add.at(counts, (r, c), 1)

    cell_rows = coo.nrows / height
    cell_cols = coo.ncols / width
    cell_capacity = max(1.0, cell_rows * cell_cols)

    marked = np.zeros(height, dtype=bool)
    if scatter_rows is not None and len(scatter_rows):
        sr = (np.asarray(scatter_rows, dtype=np.int64) * height) // coo.nrows
        marked[np.clip(sr, 0, height - 1)] = True

    lines = [f"{coo.nrows} x {coo.ncols}, nnz = {coo.nnz:,} "
             f"(each cell ~ {int(round(cell_rows))} x {int(round(cell_cols))})"]
    top = "  +" + "-" * width + "+"
    lines.append(top)
    for i in range(height):
        row = counts[i]
        chars = []
        for v in row:
            if v == 0:
                chars.append(" ")
            else:
                density = min(1.0, v / cell_capacity)
                idx = 1 + int(density * (len(_GLYPHS) - 2))
                chars.append(_GLYPHS[min(idx, len(_GLYPHS) - 1)])
        margin = "> " if marked[i] else "  "
        lines.append(f"{margin}|{''.join(chars)}|")
    lines.append(top)
    return "\n".join(lines)

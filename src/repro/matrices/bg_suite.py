"""Bell & Garland's structured test matrices.

The baseline paper ("Implementing sparse matrix-vector multiplication
on throughput-oriented processors", SC'09) evaluates its DIA and ELL
kernels on Laplacian stencils over regular grids — the setting Sun et
al. reference when noting kim1/kim2 have "similar nonzero distribution
— nonzeros mainly distribute on 25 diagonals".  This module provides
those matrices so the reproduction can also check the *baseline*
paper's headline fact: on pure stencils DIA is the format to beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.matrices.generators import grid_stencil, stencil_offsets


@dataclass(frozen=True)
class BGSpec:
    """One Bell & Garland structured matrix."""

    name: str
    dims: Tuple[int, ...]
    reach: int
    cross: bool
    description: str

    @property
    def points(self) -> int:
        if self.cross:
            return 2 * len(self.dims) * self.reach + 1
        return (2 * self.reach + 1) ** len(self.dims)

    def generate(self, scale: float = 1.0, seed: int = 0) -> COOMatrix:
        """Build the stencil matrix at ``scale`` (per-axis scaling)."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        rng = np.random.default_rng(seed)
        axes = len(self.dims)
        dims = tuple(max(4, int(round(d * scale ** (1.0 / axes))))
                     for d in self.dims)
        return grid_stencil(dims, stencil_offsets(dims, self.reach, self.cross),
                            rng)


#: the SC'09 structured-matrix set (grid sizes as published)
BG_SUITE: List[BGSpec] = [
    BGSpec("Laplace_3pt", (1_000_000,), 1, True, "1-D Laplacian, 3-point"),
    BGSpec("Laplace_5pt", (1000, 1000), 1, True, "2-D Laplacian, 5-point"),
    BGSpec("Laplace_9pt", (1000, 1000), 1, False, "2-D Laplacian, 9-point"),
    BGSpec("Laplace_7pt", (100, 100, 100), 1, True, "3-D Laplacian, 7-point"),
    BGSpec("Laplace_27pt", (100, 100, 100), 1, False, "3-D Laplacian, 27-point"),
]

_BY_NAME: Dict[str, BGSpec] = {s.name: s for s in BG_SUITE}


def get_bg_spec(name: str) -> BGSpec:
    """Look a Bell & Garland spec up by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"no B&G matrix {name!r}; valid: {sorted(_BY_NAME)}") from None

"""The 23 evaluation matrices of Table V, as synthetic recipes.

Each :class:`MatrixSpec` records the paper's dimensions/nnz and a
generator closure reproducing the documented structure.  ``scale``
shrinks a matrix while preserving its structure (grid dimensions scale
per-axis; diagonal counts and section structure are preserved), so the
functional simulation can run the whole suite quickly while footprint
arithmetic (e.g. the DIA out-of-memory check) uses the full-size spec.

Structural sources, per matrix family:

- *crystk02/03* (FEM crystal vibration): ~35 fully occupied diagonals
  in adjacent clusters.
- *s3dkt3m2 / s3dkq4m2* (FEM cylindrical shells): 655 diagonals overall
  but only ~21/27 nonzeros per row — diagonals live in row bands
  (the paper stores them with 24 diagonal patterns).
- *ecology1/2*: 5-point-stencil Laplacian on a 1000² grid, symmetric
  half stored (offsets 0, +1 broken at grid edges, +1000).
- *wang3/4* (3-D semiconductor device): 7-point stencil.
- *kim1/2* (2-D 5x5 box stencil): 25 diagonals.
- *af_*_k101* (FEM sheet stamping): ~900 diagonals in bands; DIA in
  double precision exceeds the C2050's 3 GB (single fits) — Table V
  sizes chosen to reproduce exactly that.
- *Lin* (3-D eigenproblem): 7-point stencil, symmetric half.
- *nemeth21-23* (quantum chemistry): dense band (halfwidth 31/36/40)
  plus a sprinkle of long rows that drive HYB's COO tail.
- *s80_80_50 … us110_110_68* (astrophysics core convection, Fig. 1):
  tridiagonal core + ±nx·ny stencil diagonals + broken far diagonals
  (idle sections) + scatter points; the ``us*`` variants break more
  and scatter more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.formats.coo import COOMatrix
from repro.matrices import generators as gen


@dataclass(frozen=True)
class MatrixSpec:
    """One Table V row bound to a synthetic recipe."""

    number: int
    name: str
    paper_rows: int
    paper_cols: int
    paper_nnz: int
    family: str
    builder: Callable[[float, np.random.Generator], COOMatrix]
    notes: str = ""
    #: matrices the paper flags as DIA-hostile (huge fill)
    dia_hostile: bool = False
    #: matrices where ELL beats CRSD (low AD proportion / barrier cost)
    ell_favoured: bool = False
    #: occupied diagonals of the *full-size* matrix (655 for s3dkt3m2
    #: is stated in the paper; others estimated from the structure) —
    #: drives the analytic full-size DIA footprint / out-of-memory check
    full_diagonals: Optional[int] = None
    #: minimum rows to generate for benchmarking; band-structured
    #: matrices need enough rows to keep their fill ratio at scale
    min_bench_rows: Optional[int] = None

    def generate(self, scale: float = 1.0, seed: int = 0) -> COOMatrix:
        """Build the matrix at ``scale`` (1.0 = paper size)."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        rng = np.random.default_rng(seed + self.number * 1009)
        return self.builder(scale, rng)


def _sdim(d: int, scale: float, axes: int) -> int:
    """Scale one grid axis of an ``axes``-dimensional grid so the total
    size scales by ``scale``."""
    return max(4, int(round(d * scale ** (1.0 / axes))))


def _sn(n: int, scale: float) -> int:
    return max(64, int(round(n * scale)))


# ----------------------------------------------------------------------
# family builders
# ----------------------------------------------------------------------

def _crystk(n: int, spacing: int):
    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        ns = _sn(n, scale)
        sp = max(8, int(round(spacing * scale)))
        # 12 clusters of 3 adjacent diagonals, all fully occupied
        centers = [0]
        for k in range(1, 7):
            centers.extend([k * sp, -k * sp])
        centers = [c for c in centers if abs(c) < ns - 2][:12]
        spec = []
        for c in centers:
            for off in (c - 1, c, c + 1):
                spec.append((off, 1.0, 1))
        return gen.multi_diagonal(ns, spec, rng)

    return build


def _s3dk(n: int, diags_per_band: int):
    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        ns = _sn(n, scale)
        # one band spans >= 8 row segments; the full matrix keeps the
        # paper's 24 patterns, scaled matrices keep the fill *ratio*
        num_bands = min(24, max(3, ns // 1024))
        pool_step = max(16, ns // 160)
        pool = [k * pool_step for k in range(2, 80)]
        pool += [-p for p in pool]
        return gen.banded_patterns(
            ns,
            num_bands=num_bands,
            clusters_per_band=max(2, diags_per_band // 5),
            cluster_width=5,
            cluster_pool=pool,
            rng=rng,
        )

    return build


def _ecology(nx: int, ny: int):
    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        dims = (_sdim(nx, scale, 2), _sdim(ny, scale, 2))
        offs = gen.stencil_offsets(dims, reach=1, cross=True)
        return gen.grid_stencil(dims, offs, rng, upper_only=True)

    return build


def _stencil3d(dims: Tuple[int, int, int], upper_only: bool = False):
    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        d = tuple(_sdim(x, scale, 3) for x in dims)
        offs = gen.stencil_offsets(d, reach=1, cross=True)
        return gen.grid_stencil(d, offs, rng, upper_only=upper_only)

    return build


def _wang(dims: Tuple[int, int, int]):
    """wang3/wang4: a 3-D device simulation whose in-plane couplings are
    regular (tridiagonal) but whose out-of-plane couplings wander — the
    structure that makes DIA "perform very poor, like s3dkt3m2" and
    turns most CRSD entries off the ±nx/±nx·ny lines into scatter
    points, so ELL ends up the best format (Section IV-A)."""

    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        d0, d1, d2 = (_sdim(x, scale, 3) for x in dims)
        n = d0 * d1 * d2
        tri = gen.grid_stencil(
            (d0, d1, d2),
            [(0, 0, 0), (0, 0, 1), (0, 0, -1)],
            rng,
        )
        jitter = max(2, d2)
        parts = [tri]
        # in-plane couplings (±nx): offset wanders per block of rows —
        # sections survive in CRSD, DIA pays ~2*jitter extra diagonals
        for off in (d2, -d2):
            parts.append(gen.blocked_jitter_diagonal(n, off, jitter,
                                                     block_len=512, rng=rng))
        # out-of-plane couplings (±nx·ny): mostly a clean diagonal, but a
        # slice of the entries wanders per row -> isolated scatter points
        all_rows = np.arange(n, dtype=np.int64)
        wander = rng.random(n) < 0.05
        for off in (d1 * d2, -(d1 * d2)):
            clean = all_rows[~wander & (all_rows + off >= 0) & (all_rows + off < n)]
            parts.append(COOMatrix(clean, clean + off,
                                   rng.standard_normal(clean.size) + 3.0,
                                   (n, n)))
            parts.append(gen.jittered_diagonal(n, off, jitter, rng,
                                               valid_rows=all_rows[wander]))
        return gen.merge((n, n), *parts)

    return build


def _kim(nx: int, ny: int):
    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        dims = (_sdim(nx, scale, 2), _sdim(ny, scale, 2))
        offs = gen.stencil_offsets(dims, reach=2, cross=False)
        return gen.grid_stencil(dims, offs, rng)

    return build


def _af(n: int):
    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        ns = _sn(n, scale)
        num_bands = min(50, max(3, ns // 1024))
        pool_step = max(24, ns // 220)
        pool = [k * pool_step for k in range(2, 160)]
        pool += [-p for p in pool]
        return gen.banded_patterns(
            ns,
            num_bands=num_bands,
            clusters_per_band=6,  # 6 clusters x 3 diagonals = 18/row
            cluster_width=3,
            cluster_pool=pool,
            rng=rng,
        )

    return build


def _nemeth(n: int, halfwidth: int):
    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        ns = _sn(n, scale)
        hw = min(halfwidth, max(4, ns // 8))
        band = gen.banded(ns, hw, rng)
        # a few long rows -> HYB COO tail (0.2%-2.1%) + CRSD scatter rows;
        # extra entries stay near the band so DIA's fill stays realistic
        return gen.inject_dense_rows(band, row_fraction=0.01,
                                     extra_per_row=max(4, hw // 2),
                                     rng=rng, max_offset=4 * hw)

    return build


def _astro(nx: int, ny: int, nz: int, unstructured: bool):
    def build(scale: float, rng: np.random.Generator) -> COOMatrix:
        dx, dy, dz = (_sdim(v, scale, 3) for v in (nx, ny, nz))
        n = dx * dy * dz
        plane = dx * dy
        far = min(max(8, plane // 32), n // 3)  # the "±200"-style diagonal
        nsec = 12 if unstructured else 6
        occ = 0.45 if unstructured else 0.6
        spec = [
            (0, 1.0, 1),
            (1, 1.0, 1),
            (-1, 1.0, 1),
            (2, 1.0, 1),
            (-2, 1.0, 1),
            (far, occ, nsec),
            (-far, occ, nsec),
            (plane, 0.85, 2),
            (-plane, 0.85, 2),
        ]
        coo = gen.multi_diagonal(n, spec, rng)
        n_scatter = max(4, n // (2000 if unstructured else 8000))
        return gen.sprinkle_scatter(coo, n_scatter, rng)

    return build


# ----------------------------------------------------------------------
# the suite
# ----------------------------------------------------------------------

def _spec(number, name, rows, nnz, family, builder, notes="", **flags) -> MatrixSpec:
    return MatrixSpec(
        number=number,
        name=name,
        paper_rows=rows,
        paper_cols=rows,
        paper_nnz=nnz,
        family=family,
        builder=builder,
        notes=notes,
        **flags,
    )


SUITE: List[MatrixSpec] = [
    _spec(1, "crystk03", 24696, 887937, "fem-crystal", _crystk(24696, 157)),
    _spec(2, "crystk02", 13965, 491274, "fem-crystal", _crystk(13965, 118)),
    _spec(3, "s3dkt3m2", 90449, 1921955, "fem-shell", _s3dk(90449, 21),
          notes="655 diagonals, ~21 nnz/row; DIA fill is catastrophic",
          dia_hostile=True, full_diagonals=655, min_bench_rows=16384),
    _spec(4, "s3dkq4m2", 90449, 2455670, "fem-shell", _s3dk(90449, 27),
          notes="like s3dkt3m2 with ~27 nnz/row", dia_hostile=True,
          full_diagonals=655, min_bench_rows=16384),
    _spec(5, "ecology1", 1000000, 2998000, "stencil-2d", _ecology(1000, 1000),
          notes="5-point stencil, symmetric half (offsets 0, +1, +1000)"),
    _spec(6, "ecology2", 999999, 2997995, "stencil-2d", _ecology(999, 1001)),
    _spec(7, "wang3", 26064, 177168, "device-3d",
          _wang((181, 12, 12)),
          notes="irregular out-of-plane couplings; DIA very poor, "
                "ELL beats CRSD (low AD proportion + scatter rows)",
          dia_hostile=True, ell_favoured=True),
    _spec(8, "wang4", 26068, 177196, "device-3d",
          _wang((49, 28, 19)), dia_hostile=True, ell_favoured=True),
    _spec(9, "kim1", 38415, 933195, "stencil-2d-box", _kim(195, 197),
          notes="25 diagonals (5x5 box stencil)"),
    _spec(10, "kim2", 456976, 11330020, "stencil-2d-box", _kim(676, 676)),
    _spec(11, "af_1_k101", 503625, 9027150, "fem-sheet", _af(503625),
          notes="~900 diagonals; DIA double exceeds 3 GB device memory",
          dia_hostile=True, full_diagonals=900, min_bench_rows=16384),
    _spec(12, "af_2_k101", 503625, 9027150, "fem-sheet", _af(503625),
          dia_hostile=True, full_diagonals=900, min_bench_rows=16384),
    _spec(13, "af_3_k101", 503625, 9027150, "fem-sheet", _af(503625),
          dia_hostile=True, full_diagonals=900, min_bench_rows=16384),
    _spec(14, "Lin", 256000, 1011200, "stencil-3d",
          _stencil3d((40, 40, 160), upper_only=True),
          notes="7-point stencil, symmetric half"),
    _spec(15, "nemeth21", 9506, 591626, "banded", _nemeth(9506, 31)),
    _spec(16, "nemeth22", 9506, 684169, "banded", _nemeth(9506, 36)),
    _spec(17, "nemeth23", 9506, 758158, "banded", _nemeth(9506, 40)),
    _spec(18, "s80_80_50", 320000, 2532800, "astro",
          _astro(80, 80, 50, unstructured=False)),
    _spec(19, "s100_100_62", 620000, 4917600, "astro",
          _astro(100, 100, 62, unstructured=False)),
    _spec(20, "s110_110_68", 822800, 6531140, "astro",
          _astro(110, 110, 68, unstructured=False)),
    _spec(21, "us80_80_50", 320000, 2532800, "astro-unstructured",
          _astro(80, 80, 50, unstructured=True)),
    _spec(22, "us100_100_62", 620000, 4917600, "astro-unstructured",
          _astro(100, 100, 62, unstructured=True)),
    _spec(23, "us110_110_68", 822800, 6531140, "astro-unstructured",
          _astro(110, 110, 68, unstructured=True)),
]

_BY_NAME: Dict[str, MatrixSpec] = {s.name: s for s in SUITE}
_BY_NUMBER: Dict[int, MatrixSpec] = {s.number: s for s in SUITE}


def get_spec(key) -> MatrixSpec:
    """Look a spec up by Table V number or name."""
    if isinstance(key, int):
        try:
            return _BY_NUMBER[key]
        except KeyError:
            raise KeyError(f"no matrix #{key}; valid: 1..23") from None
    try:
        return _BY_NAME[str(key)]
    except KeyError:
        raise KeyError(
            f"no matrix named {key!r}; valid: {sorted(_BY_NAME)}"
        ) from None


def generate(key, scale: float = 1.0, seed: int = 0) -> COOMatrix:
    """Generate a suite matrix by number or name."""
    return get_spec(key).generate(scale=scale, seed=seed)

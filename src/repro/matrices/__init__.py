"""The evaluation matrix suite (Table V) and its generators.

The paper's 23 matrices come from NIST MatrixMarket / SuiteSparse plus
a private astrophysics application; this environment is offline, so
:mod:`repro.matrices.generators` synthesises matrices with the same
*performance-relevant structure* (dimensions, diagonal count,
occupancy sections, scatter density — see DESIGN.md for the per-matrix
recipe) and :mod:`repro.matrices.suite23` binds one recipe to each
Table V row.  Real ``.mtx`` files can be substituted through
:mod:`repro.matrices.mmio`.
"""

from repro.matrices.generators import (
    grid_stencil,
    stencil_offsets,
    banded,
    multi_diagonal,
    banded_patterns,
    inject_dense_rows,
    sprinkle_scatter,
    symmetric_banded,
    symmetric_diagonals,
    kkt_blocks,
    merge,
)
from repro.matrices.suite23 import MatrixSpec, SUITE, get_spec, generate
from repro.matrices.stats import MatrixStats, compute_stats
from repro.matrices.mmio import read_matrix_market, write_matrix_market

__all__ = [
    "grid_stencil",
    "stencil_offsets",
    "banded",
    "multi_diagonal",
    "banded_patterns",
    "inject_dense_rows",
    "sprinkle_scatter",
    "symmetric_banded",
    "symmetric_diagonals",
    "kkt_blocks",
    "merge",
    "MatrixSpec",
    "SUITE",
    "get_spec",
    "generate",
    "MatrixStats",
    "compute_stats",
    "read_matrix_market",
    "write_matrix_market",
]

"""Minimal MatrixMarket coordinate I/O.

The paper pulls its public matrices from NIST MatrixMarket; this module
lets users substitute the real ``.mtx`` files for the synthetic suite.
Supports the coordinate format with ``real``/``integer``/``pattern``
fields and ``general``/``symmetric``/``skew-symmetric`` symmetries.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

import numpy as np

from repro.formats.base import FormatError
from repro.formats.coo import COOMatrix

_HEADER = "%%MatrixMarket matrix coordinate real general"


def read_matrix_market(path: Union[str, Path]) -> COOMatrix:
    """Read a MatrixMarket coordinate file (optionally gzipped)."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise FormatError(f"{path}: not a MatrixMarket file")
        tokens = header.strip().lower().split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise FormatError(f"{path}: only coordinate matrices supported")
        field, symmetry = tokens[3], tokens[4]
        if field not in ("real", "integer", "pattern"):
            raise FormatError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise FormatError(f"{path}: unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            nrows, ncols, nnz = (int(t) for t in line.split())
        except ValueError:
            raise FormatError(f"{path}: malformed size line {line!r}") from None
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        for i in range(nnz):
            parts = fh.readline().split()
            if len(parts) < 2:
                raise FormatError(f"{path}: truncated at entry {i + 1}/{nnz}")
            rows[i] = int(parts[0]) - 1
            cols[i] = int(parts[1]) - 1
            if field != "pattern":
                vals[i] = float(parts[2])
    if symmetry in ("symmetric", "skew-symmetric"):
        # mirror every off-diagonal entry (col, row, sign * val)
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        off = rows != cols
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, sign * vals[off]]),
        )
    return COOMatrix(rows, cols, vals, (nrows, ncols))


def write_matrix_market(matrix, path: Union[str, Path]) -> None:
    """Write any :class:`~repro.formats.base.SparseFormat` as a general
    real coordinate file."""
    coo = matrix.to_coo()
    path = Path(path)
    with open(path, "wt") as fh:
        fh.write(_HEADER + "\n")
        fh.write(f"% written by repro (CRSD reproduction)\n")
        fh.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
        for r, c, v in zip(coo.rows, coo.cols, coo.vals):
            fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")

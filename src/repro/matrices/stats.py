"""Structural statistics of a sparse matrix.

Used by the bench reports, the format advisor example and the tests
that check the generators reproduce each Table V matrix's documented
structure (diagonal count, nnz/row, row-length spread).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.coo import COOMatrix


@dataclass(frozen=True)
class MatrixStats:
    """Summary structure numbers for one matrix."""

    nrows: int
    ncols: int
    nnz: int
    num_diagonals: int
    mean_nnz_per_row: float
    max_nnz_per_row: int
    min_nnz_per_row: int
    #: DIA slab slots / nnz — the padding blow-up DIA would pay
    dia_fill_ratio: float
    #: ELL slab slots / nnz
    ell_fill_ratio: float
    #: fraction of nonzeros on the 10 densest diagonals
    top10_diag_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.nrows}x{self.ncols}, nnz={self.nnz:,}, "
            f"diags={self.num_diagonals}, nnz/row={self.mean_nnz_per_row:.1f} "
            f"(min {self.min_nnz_per_row}, max {self.max_nnz_per_row}), "
            f"DIA fill x{self.dia_fill_ratio:.1f}, ELL fill x{self.ell_fill_ratio:.2f}"
        )


def compute_stats(coo: COOMatrix) -> MatrixStats:
    """Compute :class:`MatrixStats` without materialising DIA/ELL."""
    lengths = coo.row_lengths()
    nnz = coo.nnz
    if nnz == 0:
        return MatrixStats(
            nrows=coo.nrows, ncols=coo.ncols, nnz=0, num_diagonals=0,
            mean_nnz_per_row=0.0, max_nnz_per_row=0, min_nnz_per_row=0,
            dia_fill_ratio=1.0, ell_fill_ratio=1.0, top10_diag_fraction=0.0,
        )
    offsets, counts = np.unique(coo.offsets_of_entries(), return_counts=True)
    # DIA stores ndiags x nrows slots regardless of occupancy
    dia_slots = offsets.size * coo.nrows
    ell_slots = int(lengths.max()) * coo.nrows
    top10 = np.sort(counts)[-10:].sum()
    return MatrixStats(
        nrows=coo.nrows,
        ncols=coo.ncols,
        nnz=nnz,
        num_diagonals=int(offsets.size),
        mean_nnz_per_row=float(lengths.mean()),
        max_nnz_per_row=int(lengths.max()),
        min_nnz_per_row=int(lengths.min()),
        dia_fill_ratio=dia_slots / nnz,
        ell_fill_ratio=ell_slots / nnz,
        top10_diag_fraction=float(top10 / nnz),
    )


def estimate_dia_bytes(nrows: int, num_diagonals: int, precision: str = "double") -> int:
    """DIA device footprint from structure numbers alone — no
    materialisation (needed for the full-size af_*_k101 out-of-memory
    check, whose host slab would be 3.6 GB)."""
    itemsize = 8 if precision.lower() in ("double", "fp64") else 4
    return num_diagonals * nrows * itemsize + num_diagonals * 4

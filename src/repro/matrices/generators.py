"""Synthetic diagonal-sparse matrix generators.

Every generator returns a :class:`~repro.formats.coo.COOMatrix` with
normally distributed values and a documented *structure*: which
diagonals exist, how they are broken into sections, where scatter
points sit.  The 23-matrix suite (:mod:`repro.matrices.suite23`) is
composed entirely from these primitives.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.formats.coo import COOMatrix


def _values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Nonzero values: standard normal, nudged away from exact zero."""
    v = rng.standard_normal(n)
    v[v == 0.0] = 1.0
    return v


def merge(shape: Tuple[int, int], *parts: COOMatrix) -> COOMatrix:
    """Union of several COO matrices (duplicates summed)."""
    rows = np.concatenate([p.rows for p in parts]) if parts else np.empty(0)
    cols = np.concatenate([p.cols for p in parts]) if parts else np.empty(0)
    vals = np.concatenate([p.vals for p in parts]) if parts else np.empty(0)
    return COOMatrix(rows, cols, vals, shape)


# ----------------------------------------------------------------------
# grid stencils (FDM/FVM discretisations — ecology, wang, kim, Lin)
# ----------------------------------------------------------------------

def stencil_offsets(dims: Sequence[int], reach: int = 1, cross: bool = True) -> List[Tuple[int, ...]]:
    """n-D stencil offset vectors.

    ``cross=True`` gives the star stencil (2·ndim·reach + 1 points,
    e.g. 5-point in 2-D, 7-point in 3-D); ``cross=False`` gives the full
    box ``(2·reach+1)^ndim`` stencil (25-point for 2-D reach 2 — the
    kim1/kim2 structure).
    """
    ndim = len(dims)
    if cross:
        offs = [tuple(0 for _ in range(ndim))]
        for axis in range(ndim):
            for r in range(1, reach + 1):
                for sgn in (-1, 1):
                    o = [0] * ndim
                    o[axis] = sgn * r
                    offs.append(tuple(o))
        return offs
    grids = np.meshgrid(*[np.arange(-reach, reach + 1)] * ndim, indexing="ij")
    return [tuple(int(g.flat[i]) for g in grids) for i in range(grids[0].size)]


def grid_stencil(
    dims: Sequence[int],
    nd_offsets: Iterable[Tuple[int, ...]],
    rng: np.random.Generator,
    upper_only: bool = False,
) -> COOMatrix:
    """Discretisation matrix of a stencil on a regular grid.

    Rows are grid cells in row-major order; each n-D offset becomes one
    matrix diagonal, *broken at grid boundaries* (no wrap-around) —
    exactly the idle-section structure of the ecology/Lin matrices.

    ``upper_only`` keeps offsets with non-negative linear displacement
    (symmetric-half storage, matching the Table V nnz of ecology/Lin).
    """
    dims = [int(d) for d in dims]
    n = int(np.prod(dims))
    strides = np.ones(len(dims), dtype=np.int64)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]
    coords = None  # lazily computed per axis
    rows_l: List[np.ndarray] = []
    cols_l: List[np.ndarray] = []
    all_rows = np.arange(n, dtype=np.int64)
    for off in nd_offsets:
        if len(off) != len(dims):
            raise ValueError(f"offset {off} does not match grid rank {len(dims)}")
        lin = int(np.dot(off, strides))
        if upper_only and lin < 0:
            continue
        valid = np.ones(n, dtype=bool)
        for axis, o in enumerate(off):
            if o == 0:
                continue
            c = (all_rows // strides[axis]) % dims[axis]
            valid &= (c + o >= 0) & (c + o < dims[axis])
        rows = all_rows[valid]
        rows_l.append(rows)
        cols_l.append(rows + lin)
    rows = np.concatenate(rows_l) if rows_l else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_l) if cols_l else np.empty(0, dtype=np.int64)
    return COOMatrix(rows, cols, _values(rng, rows.size), (n, n))


# ----------------------------------------------------------------------
# bands (nemeth quantum-chemistry matrices)
# ----------------------------------------------------------------------

def banded(n: int, halfwidth: int, rng: np.random.Generator) -> COOMatrix:
    """Dense band: every diagonal with |offset| <= halfwidth fully
    occupied (one big AD group in CRSD terms)."""
    rows_l, cols_l = [], []
    for off in range(-halfwidth, halfwidth + 1):
        lo, hi = max(0, -off), min(n, n - off)
        r = np.arange(lo, hi, dtype=np.int64)
        rows_l.append(r)
        cols_l.append(r + off)
    rows = np.concatenate(rows_l)
    cols = np.concatenate(cols_l)
    return COOMatrix(rows, cols, _values(rng, rows.size), (n, n))


# ----------------------------------------------------------------------
# symmetric matrices (the SymCRSD / CG-family fixtures)
# ----------------------------------------------------------------------

def symmetric_diagonals(
    n: int,
    offsets: Sequence[int],
    rng: np.random.Generator,
    spd: bool = True,
) -> COOMatrix:
    """Exactly symmetric diagonal matrix: each stored offset ``o > 0``
    places bit-equal values at ``(r, r+o)`` and ``(r+o, r)``.

    ``offsets`` are the non-negative diagonals to populate (0 is always
    added).  With ``spd=True`` the main diagonal is ``1 + sum |row|``,
    making the matrix strictly diagonally dominant with a positive
    diagonal — the CG/PCG and Jacobi preconditions — while keeping the
    off-diagonal values seeded-random.
    """
    offs = sorted({int(o) for o in offsets if int(o) > 0})
    rows_l: List[np.ndarray] = []
    cols_l: List[np.ndarray] = []
    vals_l: List[np.ndarray] = []
    for off in offs:
        if off >= n:
            continue
        r = np.arange(0, n - off, dtype=np.int64)
        v = _values(rng, r.size)
        rows_l.extend([r, r + off])
        cols_l.extend([r + off, r])
        vals_l.extend([v, v])
    row_abs = np.zeros(n)
    if rows_l:
        np.add.at(row_abs, np.concatenate(rows_l),
                  np.abs(np.concatenate(vals_l)))
    d = 1.0 + row_abs if spd else np.abs(_values(rng, n)) + 0.5
    r0 = np.arange(n, dtype=np.int64)
    rows_l.append(r0)
    cols_l.append(r0)
    vals_l.append(d)
    return COOMatrix(np.concatenate(rows_l), np.concatenate(cols_l),
                     np.concatenate(vals_l), (n, n))


def symmetric_banded(
    n: int, halfwidth: int, rng: np.random.Generator, spd: bool = True
) -> COOMatrix:
    """Exactly symmetric dense band with |offset| <= halfwidth (the
    SymCRSD half-storage showcase: one mirror-closed AD pattern)."""
    return symmetric_diagonals(n, range(1, halfwidth + 1), rng, spd=spd)


def kkt_blocks(
    n1: int,
    n2: int,
    rng: np.random.Generator,
    halfwidth: int = 7,
    coupling_halfwidth: int = 2,
) -> Tuple[COOMatrix, COOMatrix, COOMatrix, COOMatrix]:
    """Blocks of a KKT-style symmetric 2×2 system, grid order
    ``[[H, B^T], [B, C]]``.

    ``H`` (n1×n1) and ``C`` (n2×n2) are symmetric bands; ``B`` (n2×n1)
    is a rectangular coupling band and ``B^T`` its bit-exact transpose.
    The diagonals of H and C are lifted to ``1 + sum |row|`` *including*
    the coupling rows/columns, so the assembled block matrix is strictly
    diagonally dominant with a positive diagonal — symmetric positive
    definite, hence a valid PCG/Jacobi fixture (a regularised KKT
    system, not a saddle point).
    """
    h_off = symmetric_diagonals(n1, range(1, halfwidth + 1), rng, spd=False)
    c_off = symmetric_diagonals(n2, range(1, halfwidth + 1), rng, spd=False)

    rows_l: List[np.ndarray] = []
    cols_l: List[np.ndarray] = []
    for off in range(-coupling_halfwidth, coupling_halfwidth + 1):
        r = np.arange(max(0, -off), min(n2, n1 - off), dtype=np.int64)
        rows_l.append(r)
        cols_l.append(r + off)
    b_rows = np.concatenate(rows_l)
    b_cols = np.concatenate(cols_l)
    b = COOMatrix(b_rows, b_cols, _values(rng, b_rows.size), (n2, n1))

    def _lift(core: COOMatrix, extra_abs: np.ndarray) -> COOMatrix:
        n = core.nrows
        off_diag = core.rows != core.cols
        row_abs = np.zeros(n)
        np.add.at(row_abs, core.rows[off_diag], np.abs(core.vals[off_diag]))
        d = 1.0 + row_abs + extra_abs
        rows = np.concatenate([core.rows[off_diag],
                               np.arange(n, dtype=np.int64)])
        cols = np.concatenate([core.cols[off_diag],
                               np.arange(n, dtype=np.int64)])
        vals = np.concatenate([core.vals[off_diag], d])
        return COOMatrix(rows, cols, vals, (n, n))

    col_abs_b = np.zeros(n1)
    np.add.at(col_abs_b, b.cols, np.abs(b.vals))
    row_abs_b = np.zeros(n2)
    np.add.at(row_abs_b, b.rows, np.abs(b.vals))
    h = _lift(h_off, col_abs_b)
    c = _lift(c_off, row_abs_b)
    return h, b.transpose(), b, c


# ----------------------------------------------------------------------
# explicit diagonals with occupancy sections (astrophysics s*/us*)
# ----------------------------------------------------------------------

def multi_diagonal(
    n: int,
    spec: Sequence[Tuple[int, float, int]],
    rng: np.random.Generator,
) -> COOMatrix:
    """Diagonals with controlled section structure.

    ``spec`` is a sequence of ``(offset, occupancy, num_sections)``:
    the diagonal at ``offset`` carries nonzeros on ``occupancy`` of its
    in-matrix extent, distributed over ``num_sections`` contiguous
    sections separated by idle sections (the Fig. 1 structure: the
    ±200 diagonals are long runs broken by long zero stretches).
    """
    rows_l: List[np.ndarray] = []
    cols_l: List[np.ndarray] = []
    for off, occupancy, nsec in spec:
        off = int(off)
        if not 0.0 < occupancy <= 1.0:
            raise ValueError(f"occupancy must be in (0,1], got {occupancy}")
        if nsec <= 0:
            raise ValueError(f"num_sections must be positive, got {nsec}")
        lo, hi = max(0, -off), min(n, n - off)
        extent = hi - lo
        if extent <= 0:
            continue
        total = max(nsec, int(round(extent * occupancy)))
        per = total // nsec
        # evenly spaced section starts with idle gaps between them
        sec_starts = np.linspace(lo, hi - per, nsec).astype(np.int64)
        for s in sec_starts:
            r = np.arange(s, min(s + per, hi), dtype=np.int64)
            rows_l.append(r)
            cols_l.append(r + off)
    rows = np.concatenate(rows_l) if rows_l else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_l) if cols_l else np.empty(0, dtype=np.int64)
    coo = COOMatrix(rows, cols, np.ones(rows.size), (n, n))
    # re-draw values after dedup so duplicates don't bias magnitudes
    return COOMatrix(coo.rows, coo.cols, _values(rng, coo.nnz), (n, n))


def banded_patterns(
    n: int,
    num_bands: int,
    clusters_per_band: int,
    cluster_width: int,
    cluster_pool: Sequence[int],
    rng: np.random.Generator,
    align: int = 128,
) -> COOMatrix:
    """FEM-style structure: many diagonals, each live only in some row
    bands (s3dkt3m2: 655 diagonals overall but only ~21 nonzeros per
    row; the paper stores it with 24 diagonal patterns).

    The row range is split into ``num_bands`` bands; each band
    activates ``clusters_per_band`` clusters of ``cluster_width``
    adjacent diagonals whose centres are drawn (deterministically, via
    ``rng``) from ``cluster_pool``.  Every band reuses the main
    cluster (centre 0) so the matrix keeps a full main band.  Band
    edges are aligned to ``align`` rows (a row-segment multiple) so
    band boundaries coincide with CRSD pattern boundaries, as they
    would for a block-structured FEM mesh.
    """
    band_edges = np.linspace(0, n, num_bands + 1).astype(np.int64)
    if align > 1:
        band_edges = np.round(band_edges / align).astype(np.int64) * align
        band_edges[0], band_edges[-1] = 0, n
    half = cluster_width // 2
    rows_l: List[np.ndarray] = []
    cols_l: List[np.ndarray] = []
    pool = np.asarray(cluster_pool, dtype=np.int64)
    for b in range(num_bands):
        lo, hi = int(band_edges[b]), int(band_edges[b + 1])
        if hi <= lo:
            continue
        # only clusters whose every diagonal spans the whole band — this
        # keeps nnz/row constant inside a band, so HYB's heuristic keeps
        # the matrix entirely in ELL (paper: matrices 1-14)
        valid = pool[(pool - half >= -lo) & (pool + half <= n - hi)]
        centers = [0]
        if valid.size:
            extra = rng.choice(valid, size=min(clusters_per_band - 1, valid.size),
                               replace=False)
            centers.extend(int(c) for c in extra)
        for c in centers:
            for off in range(c - half, c - half + cluster_width):
                r_lo = max(lo, -off)
                r_hi = min(hi, n - off)
                if r_hi <= r_lo:
                    continue
                r = np.arange(r_lo, r_hi, dtype=np.int64)
                rows_l.append(r)
                cols_l.append(r + off)
    rows = np.concatenate(rows_l) if rows_l else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_l) if cols_l else np.empty(0, dtype=np.int64)
    coo = COOMatrix(rows, cols, np.ones(rows.size), (n, n))
    return COOMatrix(coo.rows, coo.cols, _values(rng, coo.nnz), (n, n))


# ----------------------------------------------------------------------
# perturbations: dense rows and scatter points
# ----------------------------------------------------------------------

def jittered_diagonal(
    n: int,
    nominal: int,
    jitter: int,
    rng: np.random.Generator,
    valid_rows: np.ndarray | None = None,
) -> COOMatrix:
    """A "diagonal" whose column wanders per row: entry at
    ``(r, r + nominal + U[-jitter, jitter])``.

    Models irregular couplings (the wang3/wang4 semiconductor
    matrices): each entry is isolated on its exact diagonal, so DIA
    pays for ``~2*jitter`` extra diagonals and CRSD classifies the
    entries as scatter points.
    """
    rows = np.arange(n, dtype=np.int64) if valid_rows is None else np.asarray(
        valid_rows, dtype=np.int64
    )
    jit = rng.integers(-jitter, jitter + 1, size=rows.size)
    cols = rows + nominal + jit
    ok = (cols >= 0) & (cols < n)
    rows, cols = rows[ok], cols[ok]
    return COOMatrix(rows, cols, _values(rng, rows.size), (n, n))


def blocked_jitter_diagonal(
    n: int,
    nominal: int,
    jitter: int,
    block_len: int,
    rng: np.random.Generator,
) -> COOMatrix:
    """A diagonal whose offset shifts by a random delta per block of
    ``block_len`` consecutive rows.

    The entries within one block form a proper diagonal section (CRSD
    keeps them in the diagonal structure, paying some segment fill at
    block boundaries), but DIA must materialise every distinct
    ``nominal + delta`` in full.
    """
    rows = np.arange(n, dtype=np.int64)
    nblocks = -(-n // block_len)
    deltas = rng.integers(-jitter, jitter + 1, size=nblocks)
    cols = rows + nominal + deltas[rows // block_len]
    ok = (cols >= 0) & (cols < n)
    rows, cols = rows[ok], cols[ok]
    return COOMatrix(rows, cols, _values(rng, rows.size), (n, n))


def inject_dense_rows(
    coo: COOMatrix,
    row_fraction: float,
    extra_per_row: int,
    rng: np.random.Generator,
    max_offset: int | None = None,
) -> COOMatrix:
    """Add ``extra_per_row`` random entries to a fraction of rows.

    Produces the long-row population that drives HYB's COO tail
    (0.2%–2.1% of nnz on matrices 15–23) and contributes scatter
    points for CRSD.  ``max_offset`` bounds how far from the main
    diagonal the extra entries land (keeps the count of stray
    diagonals — and hence DIA's fill — realistic for band matrices).
    """
    n_rows = max(1, int(round(coo.nrows * row_fraction)))
    chosen = rng.choice(coo.nrows, size=n_rows, replace=False)
    rows = np.repeat(chosen, extra_per_row)
    if max_offset is None:
        cols = rng.integers(0, coo.ncols, size=rows.size)
    else:
        offs = rng.integers(-max_offset, max_offset + 1, size=rows.size)
        cols = np.clip(rows + offs, 0, coo.ncols - 1)
    extra = COOMatrix(rows, cols, _values(rng, rows.size), coo.shape)
    return merge(coo.shape, coo, extra)


def sprinkle_scatter(
    coo: COOMatrix, count: int, rng: np.random.Generator
) -> COOMatrix:
    """Add ``count`` isolated nonzeros at random positions (the circled
    scatter points of Fig. 1)."""
    rows = rng.integers(0, coo.nrows, size=count)
    cols = rng.integers(0, coo.ncols, size=count)
    extra = COOMatrix(rows, cols, _values(rng, count), coo.shape)
    return merge(coo.shape, coo, extra)

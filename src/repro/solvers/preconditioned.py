"""Preconditioned conjugate gradients.

Jacobi (diagonal) preconditioning — the cheapest preconditioner and
the one whose apply is itself a pure bandwidth operation, so the whole
iteration stays SpMV-shaped.  For badly scaled SPD systems it cuts the
iteration count substantially at the cost of one extra vector pass per
iteration.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.solvers.guards import make_guard
from repro.solvers.krylov import GuardArg, SolveResult, observed_solver
from repro.solvers.operator import as_operator


@observed_solver
def pcg(
    a,
    b: np.ndarray,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    guard: GuardArg = True,
    check_symmetry: bool = True,
) -> SolveResult:
    """Preconditioned CG.

    ``preconditioner`` applies ``M^{-1}`` (must be SPD); ``None``
    selects Jacobi from the operator's diagonal.  Reduces to plain CG
    when ``M = I``.  ``guard`` enables breakdown detection with
    checkpointed restart (:mod:`repro.solvers.guards`).
    ``check_symmetry`` validates the symmetry precondition up front
    (:func:`~repro.validation.validate_symmetric`); raises a typed
    :class:`~repro.validation.InputValidationError` on a non-symmetric
    system, with the flag as the expert opt-out.
    """
    op = as_operator(a)
    b = np.asarray(b, dtype=np.float64)
    if op.nrows != op.ncols:
        raise ValueError("PCG needs a square system")
    if b.size != op.nrows:
        raise ValueError(f"b must have length {op.nrows}")
    if check_symmetry:
        from repro.validation import validate_symmetric

        validate_symmetric(a, op)
    if preconditioner is None:
        d = op.diagonal()
        if np.any(d <= 0.0):
            raise ValueError(
                "Jacobi preconditioning needs a positive diagonal (SPD)"
            )
        dinv = 1.0 / d
        preconditioner = lambda r: dinv * r  # noqa: E731

    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    start_count = op.spmv_count
    target = tol * max(1.0, float(np.linalg.norm(b)))
    r = b - op(x)
    z = preconditioner(r)
    p = z.copy()
    rz = float(r @ z)
    history = []
    converged = float(np.linalg.norm(r)) <= target
    g = make_guard(guard, x, float(np.linalg.norm(r)))

    def _restart():
        """Roll back to the checkpoint and rebuild the PCG state."""
        x = g.restart_x
        r = b - op(x)
        z = preconditioner(r)
        return x, r, z, z.copy(), float(r @ z)

    it = 0
    while not converged and it < maxiter:
        ap = op(p)
        denom = float(p @ ap)
        if denom == 0.0:
            if g is None or g.force("zero curvature p.Ap") == "abort":
                break
            x, r, z, p, rz = _restart()
            continue
        alpha = rz / denom
        x += alpha * p
        r -= alpha * ap
        it += 1
        res = float(np.linalg.norm(r))
        history.append(res)
        if res <= target:
            converged = True
            break
        if g is not None:
            action = g.update(x, res)
            if action == "abort":
                break
            if action == "restart":
                x, r, z, p, rz = _restart()
                continue
        z = preconditioner(r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=history[-1] if history else float(np.linalg.norm(r)),
        history=history,
        spmv_count=op.spmv_count - start_count,
        restarts=g.restarts if g is not None else 0,
        breakdown=g.breakdown if g is not None else None,
    )

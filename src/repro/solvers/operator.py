"""Linear-operator adapter for the solvers.

A solver only needs ``y = A @ x``; this adapter accepts any of the
library's matrix carriers and counts invocations (the quantity a user
multiplies by the modelled SpMV time to budget a solve).
"""

from __future__ import annotations

from typing import Callable, Tuple, Union

import numpy as np

from repro.formats.base import SparseFormat
from repro.obs.recorder import maybe_span


class SpMVOperator:
    """Wrap a matrix-like object as a counting linear operator.

    Parameters
    ----------
    apply_fn:
        ``x -> A @ x``.
    shape:
        ``(nrows, ncols)``.
    diagonal_fn:
        Optional callable returning the matrix diagonal (needed by
        Jacobi); adapters for the library's formats provide it.
    """

    def __init__(
        self,
        apply_fn: Callable[[np.ndarray], np.ndarray],
        shape: Tuple[int, int],
        diagonal_fn: Callable[[], np.ndarray] | None = None,
    ):
        self._apply = apply_fn
        self.shape = (int(shape[0]), int(shape[1]))
        self._diagonal_fn = diagonal_fn
        #: SpMV invocations so far
        self.spmv_count = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        from repro.validation import InputValidationError

        x = np.asarray(x)
        if x.ndim != 1 or x.size != self.ncols:
            raise InputValidationError(
                f"operator of shape {self.shape} takes x of shape "
                f"({self.ncols},), got {x.shape}")
        self.spmv_count += 1
        with maybe_span("operator.matvec", "op", index=self.spmv_count):
            return self._apply(x)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Alias of ``__call__`` (counts the invocation)."""
        return self(x)

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal (required by Jacobi-type methods)."""
        if self._diagonal_fn is None:
            raise ValueError("this operator does not expose a diagonal")
        return self._diagonal_fn()

    def reset_count(self) -> None:
        """Zero the SpMV invocation counter."""
        self.spmv_count = 0


def as_operator(a: Union[SparseFormat, "np.ndarray", SpMVOperator, object]) -> SpMVOperator:
    """Coerce a matrix carrier into an :class:`SpMVOperator`.

    Accepts: an :class:`SpMVOperator` (returned as is), a
    :class:`~repro.blockop.operator.BlockOperator` (flat matvec and
    composed diagonal), any :class:`~repro.formats.base.SparseFormat`
    (including :class:`~repro.core.crsd.CRSDMatrix`), a GPU kernel
    runner (anything with ``.run(x)`` returning an object with ``.y``),
    or a dense 2-D ndarray.
    """
    from repro.blockop.operator import BlockOperator

    if isinstance(a, SpMVOperator):
        return a
    if isinstance(a, BlockOperator):
        return SpMVOperator(a.matvec, a.shape, a.diagonal)
    if isinstance(a, SparseFormat):
        def diag():
            coo = a.to_coo()
            d = np.zeros(min(a.shape), dtype=np.float64)
            on = coo.rows == coo.cols
            d[coo.rows[on]] = coo.vals[on]
            return d

        return SpMVOperator(a.matvec, a.shape, diag)
    if isinstance(a, np.ndarray) and a.ndim == 2:
        return SpMVOperator(lambda x: a @ x, a.shape,
                            lambda: np.diagonal(a).copy())
    if hasattr(a, "run") and hasattr(a, "nrows"):
        # a GPU kernel runner: functional result, tracing off for speed
        matrix = getattr(a, "matrix", None)

        def diag():
            if matrix is None:
                raise ValueError("runner exposes no matrix for the diagonal")
            coo = matrix.to_coo()
            d = np.zeros(min(a.nrows, a.ncols), dtype=np.float64)
            on = coo.rows == coo.cols
            d[coo.rows[on]] = coo.vals[on]
            return d

        return SpMVOperator(
            lambda x: a.run(x, trace=False).y, (a.nrows, a.ncols), diag
        )
    raise TypeError(f"cannot adapt {type(a).__name__} into an SpMVOperator")

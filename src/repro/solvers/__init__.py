"""Iterative solvers driven by SpMV.

SpMV matters because it is the inner kernel of Krylov solvers for the
PDE systems the paper's introduction motivates (FDM/FVM/FEM).  This
package provides the solvers a downstream user of the CRSD library
actually runs:

- :func:`~repro.solvers.krylov.cg`        — conjugate gradients (SPD)
- :func:`~repro.solvers.krylov.bicgstab`  — BiCGSTAB (general)
- :func:`~repro.solvers.stationary.jacobi` — Jacobi iteration
- :class:`~repro.solvers.operator.SpMVOperator` — adapts any storage
  format, any GPU kernel runner, or a plain callable into the solver
  interface, counting SpMV invocations.
"""

from repro.solvers.operator import SpMVOperator, as_operator
from repro.solvers.guards import BreakdownGuard, GuardConfig
from repro.solvers.krylov import cg, bicgstab, SolveResult
from repro.solvers.stationary import jacobi
from repro.solvers.gpu_cg import gpu_cg, GpuSolveResult
from repro.solvers.preconditioned import pcg

__all__ = [
    "BreakdownGuard",
    "GuardConfig",
    "SpMVOperator",
    "as_operator",
    "cg",
    "bicgstab",
    "jacobi",
    "gpu_cg",
    "pcg",
    "GpuSolveResult",
    "SolveResult",
]

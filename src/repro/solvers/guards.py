"""Breakdown guards for the iterative solvers.

A Krylov iteration can *break down*: a NaN/Inf leaks into the residual
(numerical fault, e.g. a soft-corrupted SpMV), or the residual stops
improving entirely (stagnation — a dead search direction).  Without a
guard either state silently burns the remaining ``maxiter`` iterations
or poisons ``x`` outright.

:class:`BreakdownGuard` watches the residual stream, keeps a
*checkpoint* of the best healthy iterate, and tells the solver what to
do each iteration:

- ``"ok"``      — keep iterating (the overwhelmingly common answer);
- ``"restart"`` — breakdown detected and a restart budget remains:
  the solver rolls ``x`` back to the checkpoint, recomputes the true
  residual and rebuilds its Krylov space from there;
- ``"abort"``   — breakdown detected, restart budget exhausted: stop
  and report the breakdown (``converged=False``).

The guard is **passive for healthy solves**: it only reads residuals
and occasionally copies ``x``, so a solve that never breaks down
produces bit-identical results with the guard on or off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["GuardConfig", "BreakdownGuard", "make_guard"]


@dataclass(frozen=True)
class GuardConfig:
    """Breakdown-detection thresholds.

    ``stagnation_window`` iterations without a new best residual count
    as stagnation (Krylov residuals oscillate, so the window must
    comfortably exceed any healthy oscillation period — breakdown-free
    solvers hit new bests far more often).  ``max_restarts`` bounds the
    checkpointed restarts before the solver gives up.
    """

    nan_check: bool = True
    stagnation_check: bool = True
    stagnation_window: int = 100
    max_restarts: int = 2

    def __post_init__(self):
        if self.stagnation_window < 1:
            raise ValueError("stagnation_window must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")


class BreakdownGuard:
    """Checkpointed breakdown detection for one iterative solve."""

    def __init__(self, x0: np.ndarray, res0: float,
                 config: Optional[GuardConfig] = None):
        self.config = config or GuardConfig()
        self.restarts = 0
        #: description of the last detected breakdown, or ``None``
        self.breakdown: Optional[str] = None
        self._ckpt_x = np.array(x0, copy=True)
        self._ckpt_res = res0 if math.isfinite(res0) else math.inf
        self._best_res = self._ckpt_res
        self._since_best = 0

    # ------------------------------------------------------------------
    @property
    def restart_x(self) -> np.ndarray:
        """A copy of the checkpointed iterate to restart from."""
        return self._ckpt_x.copy()

    def update(self, x: np.ndarray, res: float) -> str:
        """Feed one iteration's iterate and residual norm; returns
        ``"ok"``, ``"restart"`` or ``"abort"`` (see module docs)."""
        cfg = self.config
        if cfg.nan_check and not math.isfinite(res):
            return self.force(f"non-finite residual ({res})")
        if res < self._best_res:
            self._best_res = res
            self._since_best = 0
            # the best healthy iterate is the restart point
            np.copyto(self._ckpt_x, x)
            self._ckpt_res = res
        else:
            self._since_best += 1
            if cfg.stagnation_check and \
                    self._since_best >= cfg.stagnation_window:
                return self.force(
                    f"stagnated: no residual improvement in "
                    f"{self._since_best} iterations")
        return "ok"

    def force(self, reason: str) -> str:
        """Record a breakdown the solver detected itself (e.g. a zero
        denominator) and spend the restart budget: returns ``"restart"``
        while budget remains, ``"abort"`` after."""
        self.breakdown = reason
        self._since_best = 0
        # record the incident when a profile session is observing
        from repro.obs import recorder as _obs

        if _obs.ACTIVE is not None:
            _obs.ACTIVE.record_event(
                "solver.breakdown", "resilience", reason=reason,
                restarts=self.restarts,
            )
        if self.restarts < self.config.max_restarts:
            self.restarts += 1
            return "restart"
        return "abort"


def make_guard(guard, x0: np.ndarray,
               res0: float) -> Optional[BreakdownGuard]:
    """Normalize a solver's ``guard`` argument.

    ``True`` -> guard with default config, a :class:`GuardConfig` ->
    guard with that config, ``False``/``None`` -> no guard.
    """
    if guard is None or guard is False:
        return None
    cfg = guard if isinstance(guard, GuardConfig) else None
    return BreakdownGuard(x0, res0, cfg)

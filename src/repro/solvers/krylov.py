"""Krylov solvers: conjugate gradients and BiCGSTAB.

Textbook implementations (Saad, "Iterative Methods for Sparse Linear
Systems" — the paper's reference [2]) over the
:class:`~repro.solvers.operator.SpMVOperator` interface, with explicit
convergence reporting.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.obs.recorder import maybe_span
from repro.solvers.guards import BreakdownGuard, GuardConfig, make_guard
from repro.solvers.operator import SpMVOperator, as_operator

#: the ``guard`` argument accepted by the solvers
GuardArg = Union[bool, GuardConfig, None]


def observed_solver(fn):
    """Wrap a solver so each call is one ``solver`` span (a no-op when
    observation is off)."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with maybe_span(f"{fn.__name__}.solve", "solver"):
            return fn(*args, **kwargs)

    return wrapper


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    #: residual norm after each iteration (length ``iterations``)
    history: List[float]
    #: SpMV invocations consumed by this solve
    spmv_count: int
    #: checkpointed restarts taken by the breakdown guard
    restarts: int = 0
    #: last breakdown the guard detected (set even when a restart
    #: recovered the solve), else ``None``
    breakdown: Optional[str] = None


def _prepare(a, b: np.ndarray, x0: Optional[np.ndarray],
             check_symmetry: bool = False):
    op = as_operator(a)
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1 or b.size != op.nrows:
        raise ValueError(f"b must have length {op.nrows}, got shape {b.shape}")
    if op.nrows != op.ncols:
        raise ValueError("iterative solvers need a square system")
    if check_symmetry:
        from repro.validation import validate_symmetric

        validate_symmetric(a, op)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    if x.shape != b.shape:
        raise ValueError("x0 must match b")
    return op, b, x


def _restart_cg(g: BreakdownGuard, op: SpMVOperator, b: np.ndarray):
    """Roll back to the guard's checkpoint and rebuild the CG state:
    true residual from scratch, search direction reset to ``r``."""
    x = g.restart_x
    r = b - op(x)
    p = r.copy()
    return x, r, p, float(r @ r)


@observed_solver
def cg(
    a,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    guard: GuardArg = True,
    check_symmetry: bool = True,
) -> SolveResult:
    """Conjugate gradients for symmetric positive-definite systems.

    ``a`` may be any matrix carrier accepted by
    :func:`~repro.solvers.operator.as_operator`.  Convergence criterion:
    ``||r|| <= tol * max(1, ||b||)``.  ``guard`` enables breakdown
    detection with checkpointed restart (see
    :mod:`repro.solvers.guards`); healthy solves are bit-identical with
    the guard on or off.  ``check_symmetry`` validates the CG
    symmetry precondition up front
    (:func:`~repro.validation.validate_symmetric`) and raises a typed
    :class:`~repro.validation.InputValidationError` instead of silently
    diverging; experts solving a known-symmetric system can opt out.
    """
    op, b, x = _prepare(a, b, x0, check_symmetry=check_symmetry)
    start_count = op.spmv_count
    target = tol * max(1.0, float(np.linalg.norm(b)))
    r = b - op(x)
    p = r.copy()
    rs = float(r @ r)
    history: List[float] = []
    converged = np.sqrt(rs) <= target
    g = make_guard(guard, x, float(np.sqrt(rs)))
    it = 0
    while not converged and it < maxiter:
        ap = op(p)
        denom = float(p @ ap)
        if denom == 0.0:
            if g is None or g.force("zero curvature p.Ap") == "abort":
                break
            x, r, p, rs = _restart_cg(g, op, b)
            continue
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        it += 1
        res = float(np.sqrt(rs_new))
        history.append(res)
        if res <= target:
            converged = True
            break
        if g is not None:
            action = g.update(x, res)
            if action == "abort":
                break
            if action == "restart":
                x, r, p, rs = _restart_cg(g, op, b)
                continue
        p = r + (rs_new / rs) * p
        rs = rs_new
    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=history[-1] if history else float(np.sqrt(rs)),
        history=history,
        spmv_count=op.spmv_count - start_count,
        restarts=g.restarts if g is not None else 0,
        breakdown=g.breakdown if g is not None else None,
    )


def _restart_bicgstab(g: BreakdownGuard, op: SpMVOperator, b: np.ndarray):
    """Roll back to the checkpoint and rebuild the BiCGSTAB state:
    true residual, fresh shadow residual, unit scalars, zeroed v/p —
    exactly the state of a fresh solve started at the checkpoint."""
    x = g.restart_x
    r = b - op(x)
    return x, r, r.copy(), 1.0, 1.0, 1.0, np.zeros_like(b), np.zeros_like(b)


@observed_solver
def bicgstab(
    a,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    guard: GuardArg = True,
) -> SolveResult:
    """BiCGSTAB for general (non-symmetric) systems (Saad, §7.4.2).

    The classic breakdown conditions (``rho = 0``, ``r_hat.v = 0``,
    ``omega = 0``) and NaN/stagnation are handled by the breakdown
    guard when ``guard`` is enabled: a checkpointed restart rebuilds
    the Krylov space from the best healthy iterate.
    """
    op, b, x = _prepare(a, b, x0)
    start_count = op.spmv_count
    target = tol * max(1.0, float(np.linalg.norm(b)))
    r = b - op(x)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    history: List[float] = []
    converged = float(np.linalg.norm(r)) <= target
    g = make_guard(guard, x, float(np.linalg.norm(r)))
    fresh = True  # first iteration after a (re)start: p = r
    it = 0

    def _broke(reason: str) -> bool:
        """True -> abort the loop; False -> state was rebuilt, retry."""
        nonlocal x, r, r_hat, rho, alpha, omega, v, p, fresh
        if g is None or g.force(reason) == "abort":
            return True
        x, r, r_hat, rho, alpha, omega, v, p = _restart_bicgstab(g, op, b)
        fresh = True
        return False

    while not converged and it < maxiter:
        rho_new = float(r_hat @ r)
        if rho_new == 0.0:
            if _broke("rho breakdown (r_hat . r = 0)"):
                break
            continue
        if fresh:
            p = r.copy()
            fresh = False
        else:
            beta = (rho_new / rho) * (alpha / omega)
            p = r + beta * (p - omega * v)
        v = op(p)
        denom = float(r_hat @ v)
        if denom == 0.0:
            if _broke("breakdown (r_hat . v = 0)"):
                break
            continue
        alpha = rho_new / denom
        s = r - alpha * v
        if float(np.linalg.norm(s)) <= target:
            x += alpha * p
            it += 1
            history.append(float(np.linalg.norm(s)))
            converged = True
            break
        t = op(s)
        tt = float(t @ t)
        if tt == 0.0:
            if _broke("breakdown (t . t = 0)"):
                break
            continue
        omega = float(t @ s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        rho = rho_new
        it += 1
        res = float(np.linalg.norm(r))
        history.append(res)
        if res <= target:
            converged = True
            break
        if g is not None:
            action = g.update(x, res)
            if action == "abort":
                break
            if action == "restart":
                x, r, r_hat, rho, alpha, omega, v, p = \
                    _restart_bicgstab(g, op, b)
                fresh = True
                continue
        if omega == 0.0:
            if _broke("omega breakdown (stabilizer step = 0)"):
                break
    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=history[-1] if history else float(np.linalg.norm(r)),
        history=history,
        spmv_count=op.spmv_count - start_count,
        restarts=g.restarts if g is not None else 0,
        breakdown=g.breakdown if g is not None else None,
    )

"""Krylov solvers: conjugate gradients and BiCGSTAB.

Textbook implementations (Saad, "Iterative Methods for Sparse Linear
Systems" — the paper's reference [2]) over the
:class:`~repro.solvers.operator.SpMVOperator` interface, with explicit
convergence reporting.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs.recorder import maybe_span
from repro.solvers.operator import SpMVOperator, as_operator


def observed_solver(fn):
    """Wrap a solver so each call is one ``solver`` span (a no-op when
    observation is off)."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with maybe_span(f"{fn.__name__}.solve", "solver"):
            return fn(*args, **kwargs)

    return wrapper


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    #: residual norm after each iteration (length ``iterations``)
    history: List[float]
    #: SpMV invocations consumed by this solve
    spmv_count: int


def _prepare(a, b: np.ndarray, x0: Optional[np.ndarray]):
    op = as_operator(a)
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1 or b.size != op.nrows:
        raise ValueError(f"b must have length {op.nrows}, got shape {b.shape}")
    if op.nrows != op.ncols:
        raise ValueError("iterative solvers need a square system")
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    if x.shape != b.shape:
        raise ValueError("x0 must match b")
    return op, b, x


@observed_solver
def cg(
    a,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
) -> SolveResult:
    """Conjugate gradients for symmetric positive-definite systems.

    ``a`` may be any matrix carrier accepted by
    :func:`~repro.solvers.operator.as_operator`.  Convergence criterion:
    ``||r|| <= tol * max(1, ||b||)``.
    """
    op, b, x = _prepare(a, b, x0)
    start_count = op.spmv_count
    target = tol * max(1.0, float(np.linalg.norm(b)))
    r = b - op(x)
    p = r.copy()
    rs = float(r @ r)
    history: List[float] = []
    converged = np.sqrt(rs) <= target
    it = 0
    while not converged and it < maxiter:
        ap = op(p)
        denom = float(p @ ap)
        if denom == 0.0:
            break
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        it += 1
        history.append(np.sqrt(rs_new))
        if np.sqrt(rs_new) <= target:
            converged = True
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=history[-1] if history else float(np.sqrt(rs)),
        history=history,
        spmv_count=op.spmv_count - start_count,
    )


@observed_solver
def bicgstab(
    a,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
) -> SolveResult:
    """BiCGSTAB for general (non-symmetric) systems (Saad, §7.4.2)."""
    op, b, x = _prepare(a, b, x0)
    start_count = op.spmv_count
    target = tol * max(1.0, float(np.linalg.norm(b)))
    r = b - op(x)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    history: List[float] = []
    converged = float(np.linalg.norm(r)) <= target
    it = 0
    while not converged and it < maxiter:
        rho_new = float(r_hat @ r)
        if rho_new == 0.0:
            break
        if it == 0:
            p = r.copy()
        else:
            beta = (rho_new / rho) * (alpha / omega)
            p = r + beta * (p - omega * v)
        v = op(p)
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho_new / denom
        s = r - alpha * v
        if float(np.linalg.norm(s)) <= target:
            x += alpha * p
            it += 1
            history.append(float(np.linalg.norm(s)))
            converged = True
            break
        t = op(s)
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        rho = rho_new
        it += 1
        res = float(np.linalg.norm(r))
        history.append(res)
        if res <= target:
            converged = True
            break
        if omega == 0.0:
            break
    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=history[-1] if history else float(np.linalg.norm(r)),
        history=history,
        spmv_count=op.spmv_count - start_count,
    )

"""Stationary iterations (Jacobi).

Jacobi converges for strictly diagonally dominant systems and is the
classic demonstration workload for SpMV-per-iteration solvers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.krylov import SolveResult, observed_solver
from repro.solvers.operator import as_operator


@observed_solver
def jacobi(
    a,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    maxiter: int = 10_000,
) -> SolveResult:
    """Jacobi iteration ``x <- x + D^{-1}(b - A x)``.

    Requires the operator to expose its diagonal (all library formats
    do) with no zero diagonal entries.
    """
    op = as_operator(a)
    b = np.asarray(b, dtype=np.float64)
    if op.nrows != op.ncols:
        raise ValueError("jacobi needs a square system")
    if b.size != op.nrows:
        raise ValueError(f"b must have length {op.nrows}")
    d = op.diagonal()
    if np.any(d == 0.0):
        raise ValueError("jacobi requires a nonzero diagonal")
    dinv = 1.0 / d
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    start_count = op.spmv_count
    target = tol * max(1.0, float(np.linalg.norm(b)))
    history = []
    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        r = b - op(x)
        res = float(np.linalg.norm(r))
        history.append(res)
        if res <= target:
            converged = True
            break
        x += dinv * r
    return SolveResult(
        x=x,
        converged=converged,
        iterations=it,
        residual_norm=history[-1] if history else float("inf"),
        history=history,
        spmv_count=op.spmv_count - start_count,
    )

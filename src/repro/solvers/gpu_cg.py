"""Device-resident conjugate gradients.

Runs the *whole* CG iteration on the simulated device — the generated
CRSD SpMV plus the level-1 kernels of :mod:`repro.ocl.blas` — with all
vectors resident, and aggregates one trace for the entire solve.  This
is the usage pattern under which the paper's GPU numbers hold (no
per-iteration PCIe transfers), and it lets a whole solve be priced by
the cost model:  SpMV dominance, axpy/dot overheads and all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gpu_kernels.base import GPUSpMV
from repro.obs.recorder import maybe_span
from repro.ocl import blas
from repro.ocl.trace import KernelTrace
from repro.solvers.guards import make_guard
from repro.solvers.krylov import GuardArg


@dataclass
class GpuSolveResult:
    """Outcome plus the solve's aggregate device trace."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    trace: KernelTrace
    kernel_launches: int
    #: checkpointed restarts taken by the breakdown guard
    restarts: int = 0
    #: last breakdown the guard detected, else ``None``
    breakdown: Optional[str] = None


def gpu_cg(
    runner: GPUSpMV,
    b: np.ndarray,
    tol: float = 1e-10,
    maxiter: int = 500,
    guard: GuardArg = True,
) -> GpuSolveResult:
    """Conjugate gradients with device-resident vectors.

    ``runner`` is any prepared GPU SpMV runner (typically
    :class:`~repro.gpu_kernels.crsd_runner.CrsdSpMV` over an SPD
    matrix).  Vectors x, r, p live in device buffers for the whole
    solve; only scalars (the dot-product results) cross to the host,
    as in a real implementation.  ``guard`` enables breakdown
    detection with checkpointed restart on the device-resident state.
    """
    with maybe_span("gpu_cg.solve", "solver", n=runner.nrows, tol=tol,
                    maxiter=maxiter, kernel=runner.name):
        return _gpu_cg(runner, b, tol, maxiter, guard)


def _gpu_cg(
    runner: GPUSpMV,
    b: np.ndarray,
    tol: float,
    maxiter: int,
    guard: GuardArg = True,
) -> GpuSolveResult:
    if runner.nrows != runner.ncols:
        raise ValueError("CG needs a square system")
    n = runner.nrows
    b = np.asarray(b, dtype=np.float64)
    if b.size != n:
        raise ValueError(f"b must have length {n}")
    runner.prepare()
    ctx = runner.context
    device = runner.device

    total = KernelTrace()
    launches = 0

    def spmv(vec: np.ndarray) -> np.ndarray:
        nonlocal launches
        run = runner.run(vec)
        total.merge(run.trace)
        launches += 1
        return run.y

    xb = ctx.alloc_zeros(n, name="cg_x")
    rb = ctx.alloc(b.copy(), name="cg_r")        # r = b - A*0 = b
    pb = ctx.alloc(b.copy(), name="cg_p")
    try:
        target = tol * max(1.0, float(np.linalg.norm(b)))
        rs, tr = blas.dot(rb, rb, device)
        total.merge(tr)
        launches += 1
        converged = np.sqrt(rs) <= target
        it = 0
        res = float(np.sqrt(rs))
        g = make_guard(guard, xb.data, res)

        def restart() -> None:
            """Roll the device-resident state back to the checkpoint:
            x from the guard, true residual via one SpMV, p = r."""
            nonlocal rs, launches
            xb.data[:] = g.restart_x
            ax = spmv(xb.data)
            rb.data[:] = b - ax
            pb.data[:] = rb.data
            rs, tr = blas.dot(rb, rb, device)
            total.merge(tr)
            launches += 1

        while not converged and it < maxiter:
            with maybe_span("gpu_cg.iteration", "solver", iteration=it):
                ap = spmv(pb.data)
                apb = ctx.alloc(ap, name="cg_ap")
                try:
                    denom, tr = blas.dot(pb, apb, device)
                    total.merge(tr)
                    if denom == 0.0:
                        if g is None or \
                                g.force("zero curvature p.Ap") == "abort":
                            break
                        restart()
                        continue
                    alpha = rs / denom
                    total.merge(blas.axpy(alpha, pb, xb, device))
                    total.merge(blas.axpy(-alpha, apb, rb, device))
                    rs_new, tr = blas.dot(rb, rb, device)
                    total.merge(tr)
                    launches += 4
                finally:
                    ctx.free(apb)
                it += 1
                res = float(np.sqrt(rs_new))
                if res <= target:
                    converged = True
                    break
                if g is not None:
                    action = g.update(xb.data, res)
                    if action == "abort":
                        break
                    if action == "restart":
                        restart()
                        continue
                total.merge(blas.scale_add(rb, rs_new / rs, pb, device))
                launches += 1
                rs = rs_new
        return GpuSolveResult(
            x=xb.data.copy(),
            converged=converged,
            iterations=it,
            residual_norm=res,
            trace=total,
            kernel_launches=launches,
            restarts=g.restarts if g is not None else 0,
            breakdown=g.breakdown if g is not None else None,
        )
    finally:
        ctx.free(xb)
        ctx.free(rb)
        ctx.free(pb)

"""Block-structured operator composition over the SpMV serving paths.

Multi-physics and KKT-style systems are block matrices whose blocks are
individually diagonal-sparse; this package composes per-block carriers
(or GPU runners) into one linear operator the Krylov solvers consume,
without ever materialising the assembled matrix:

- :class:`~repro.blockop.vector.BlockVector` — a partition-aware vector
  converting losslessly to/from the flat solver view;
- :class:`~repro.blockop.operator.BlockOperator` — an R×C block grid
  whose ``matvec`` serves every block through its own path (generated
  CRSD codelets, symmetric half-storage kernels, host references) and
  aggregates per-block obs spans and device trace counters;
- :func:`~repro.blockop.operator.block_diag` /
  :func:`~repro.blockop.operator.from_blocks` — constructors.
"""

from repro.blockop.operator import BlockOperator, block_diag, from_blocks
from repro.blockop.vector import BlockVector

__all__ = [
    "BlockOperator",
    "BlockVector",
    "block_diag",
    "from_blocks",
]

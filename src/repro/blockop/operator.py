"""Block-structured linear operators over the library's SpMV carriers.

A :class:`BlockOperator` is an R×C grid of blocks — each ``None`` (a
zero block) or anything :func:`~repro.solvers.operator.as_operator`
accepts: a sparse carrier (COO/CRSD/symmetric CRSD), a dense array, a
GPU kernel runner, or an :class:`~repro.solvers.operator.SpMVOperator`.
Its ``matvec`` routes every block product through the child's own
serving path (so CRSD blocks run the generated codelets and a
runner-backed block accumulates device traces), slices the flat ``x``
by column offsets and accumulates the flat ``y`` by row offsets; each
block product runs inside its own obs span tagged with the grid
coordinates, so a recorded session shows per-block cost directly.

``run`` additionally merges the children's :class:`KernelTrace`
counters (runner-backed blocks only) into one aggregate trace — the
block-level analogue of a single kernel run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blockop.vector import BlockVector
from repro.obs.recorder import maybe_span
from repro.ocl.trace import KernelTrace
from repro.solvers.operator import SpMVOperator, as_operator


class BlockOperator:
    """A block matrix whose blocks are independently-served operators.

    Parameters
    ----------
    grid:
        Nested sequence (R rows × C columns) of blocks; ``None`` means
        a zero block.  Every row needs at least one non-``None`` block
        and so does every column (otherwise that slice's extent would
        be unknowable), and all blocks of one row/column must agree on
        their row/column count.
    """

    def __init__(self, grid: Sequence[Sequence[object]]):
        self._children: List[List[Optional[object]]] = [list(r) for r in grid]
        if not self._children or not self._children[0]:
            raise ValueError("a BlockOperator needs at least one block")
        ncols_grid = len(self._children[0])
        if any(len(r) != ncols_grid for r in self._children):
            raise ValueError("grid rows have differing lengths")
        self._ops: List[List[Optional[SpMVOperator]]] = [
            [None if b is None else as_operator(b) for b in row]
            for row in self._children
        ]
        self.row_sizes = self._extents(rows=True)
        self.col_sizes = self._extents(rows=False)
        #: block matvec invocations of this operator
        self.matvec_count = 0

    def _extents(self, rows: bool) -> Tuple[int, ...]:
        n_outer = len(self._ops) if rows else len(self._ops[0])
        sizes = []
        for k in range(n_outer):
            line = (self._ops[k] if rows
                    else [r[k] for r in self._ops])
            extents = {op.shape[0 if rows else 1]
                       for op in line if op is not None}
            kind = "row" if rows else "column"
            if not extents:
                raise ValueError(
                    f"block {kind} {k} is entirely zero blocks; its "
                    "extent is unknowable — pass an explicit block")
            if len(extents) > 1:
                raise ValueError(
                    f"block {kind} {k} has inconsistent extents "
                    f"{sorted(extents)}")
            sizes.append(extents.pop())
        return tuple(sizes)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def grid_shape(self) -> Tuple[int, int]:
        return (len(self._ops), len(self._ops[0]))

    @property
    def shape(self) -> Tuple[int, int]:
        return (sum(self.row_sizes), sum(self.col_sizes))

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def block(self, i: int, j: int) -> Optional[SpMVOperator]:
        """The coerced operator at grid position (i, j), or ``None``."""
        return self._ops[i][j]

    def child(self, i: int, j: int) -> Optional[object]:
        """The original (uncoerced) block at grid position (i, j)."""
        return self._children[i][j]

    @property
    def row_offsets(self) -> Tuple[int, ...]:
        out = [0]
        for s in self.row_sizes:
            out.append(out[-1] + s)
        return tuple(out)

    @property
    def col_offsets(self) -> Tuple[int, ...]:
        out = [0]
        for s in self.col_sizes:
            out.append(out[-1] + s)
        return tuple(out)

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def matvec(self, x: Union[np.ndarray, BlockVector]) -> np.ndarray:
        """Flat ``y = A @ x``; accepts a flat vector or a BlockVector."""
        if isinstance(x, BlockVector):
            if x.sizes != self.col_sizes:
                raise ValueError(
                    f"x partition {x.sizes} does not match operator "
                    f"column sizes {self.col_sizes}")
            bx = x
        else:
            bx = BlockVector.from_flat(np.asarray(x), self.col_sizes)
        self.matvec_count += 1
        y = np.zeros(self.nrows, dtype=np.result_type(
            np.float64, *(b.dtype for b in bx)))
        ro = self.row_offsets
        for i, row in enumerate(self._ops):
            for j, op in enumerate(row):
                if op is None:
                    continue
                with maybe_span("blockop.block", "op", i=i, j=j,
                                nrows=op.shape[0], ncols=op.shape[1]):
                    y[ro[i]:ro[i + 1]] += op(bx[j])
        return y

    __call__ = matvec

    def block_matvec(self, x: BlockVector) -> BlockVector:
        """``A @ x`` returned in the row partition."""
        return BlockVector.from_flat(self.matvec(x), self.row_sizes)

    def run(self, x: Union[np.ndarray, BlockVector], trace: bool = True):
        """``matvec`` plus an aggregate :class:`KernelTrace` merged from
        every runner-backed block (children exposing ``.run``); blocks
        served on the host contribute no counters."""
        from repro.gpu_kernels.base import SpMVRun

        if isinstance(x, BlockVector):
            bx = x
        else:
            bx = BlockVector.from_flat(np.asarray(x), self.col_sizes)
        self.matvec_count += 1
        y = np.zeros(self.nrows, dtype=np.float64)
        tr = KernelTrace()
        ro = self.row_offsets
        for i, row in enumerate(self._children):
            for j, child in enumerate(row):
                if child is None:
                    continue
                with maybe_span("blockop.block", "op", i=i, j=j):
                    if hasattr(child, "run") and hasattr(child, "nrows"):
                        blk = child.run(bx[j], trace=trace)
                        self._ops[i][j].spmv_count += 1
                        y[ro[i]:ro[i + 1]] += blk.y
                        tr.merge(blk.trace)
                    else:
                        y[ro[i]:ro[i + 1]] += self._ops[i][j](bx[j])
        return SpMVRun(y=y, trace=tr)

    # ------------------------------------------------------------------
    # solver surface
    # ------------------------------------------------------------------
    def diagonal(self) -> np.ndarray:
        """The main diagonal, composed from the diagonal blocks.

        Defined for square block layouts (``row_sizes == col_sizes``):
        every main-diagonal entry then falls inside a diagonal block, a
        missing diagonal block contributes zeros.
        """
        if self.row_sizes != self.col_sizes:
            raise ValueError(
                f"diagonal() needs a square block layout, got row sizes "
                f"{self.row_sizes} vs column sizes {self.col_sizes}")
        parts = []
        for k in range(len(self._ops)):
            op = self._ops[k][k] if k < len(self._ops[0]) else None
            if op is None:
                parts.append(np.zeros(self.row_sizes[k], dtype=np.float64))
            else:
                parts.append(np.asarray(op.diagonal(), dtype=np.float64))
        return np.concatenate(parts)

    @property
    def spmv_counts(self) -> dict:
        """Per-block SpMV invocation counts, keyed by grid position."""
        return {
            (i, j): op.spmv_count
            for i, row in enumerate(self._ops)
            for j, op in enumerate(row)
            if op is not None
        }

    @property
    def spmv_count(self) -> int:
        """Total SpMV invocations across all blocks."""
        return sum(self.spmv_counts.values())

    def reset_count(self) -> None:
        """Zero this operator's and every block's invocation counters."""
        self.matvec_count = 0
        for row in self._ops:
            for op in row:
                if op is not None:
                    op.reset_count()

    def __repr__(self) -> str:
        r, c = self.grid_shape
        return (f"<BlockOperator {r}x{c} blocks, shape={self.shape}, "
                f"zero_blocks={sum(op is None for row in self._ops for op in row)}>")


def from_blocks(grid: Sequence[Sequence[object]]) -> BlockOperator:
    """Build a :class:`BlockOperator` from a nested block grid."""
    return BlockOperator(grid)


def block_diag(*blocks: object) -> BlockOperator:
    """Block-diagonal operator: ``blocks[k]`` at grid position (k, k),
    zero blocks elsewhere (the sparse analogue of a dense block_diag)."""
    if not blocks:
        raise ValueError("block_diag needs at least one block")
    n = len(blocks)
    grid: List[List[Optional[object]]] = [
        [blocks[i] if i == j else None for j in range(n)] for i in range(n)
    ]
    return BlockOperator(grid)

"""Block-partitioned vectors.

A :class:`BlockVector` is a list of 1-D numpy blocks with a fixed
partition; it converts losslessly to and from the flat concatenated
vector the solvers and kernels operate on.  Arithmetic is blockwise and
returns new :class:`BlockVector` instances with the same partition, so
solver updates can be written either on the flat view or per block.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


class BlockVector:
    """An ordered partition of a vector into named-by-position blocks."""

    def __init__(self, blocks: Iterable[np.ndarray]):
        self._blocks: List[np.ndarray] = []
        for i, b in enumerate(blocks):
            arr = np.asarray(b)
            if arr.ndim != 1:
                raise ValueError(
                    f"block {i} must be 1-D, got shape {arr.shape}")
            self._blocks.append(arr)
        if not self._blocks:
            raise ValueError("a BlockVector needs at least one block")

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_flat(cls, flat: np.ndarray,
                  sizes: Sequence[int]) -> "BlockVector":
        """Partition ``flat`` into blocks of the given sizes."""
        flat = np.asarray(flat)
        if flat.ndim != 1:
            raise ValueError(f"flat vector must be 1-D, got {flat.shape}")
        sizes = [int(s) for s in sizes]
        if flat.size != sum(sizes):
            raise ValueError(
                f"flat vector has {flat.size} entries, partition wants "
                f"{sum(sizes)}")
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        return cls([flat[offsets[i]:offsets[i + 1]].copy()
                    for i in range(len(sizes))])

    @classmethod
    def zeros(cls, sizes: Sequence[int], dtype=np.float64) -> "BlockVector":
        return cls([np.zeros(int(s), dtype=dtype) for s in sizes])

    def flatten(self) -> np.ndarray:
        """The flat concatenated vector (always a fresh array)."""
        return np.concatenate(self._blocks)

    def copy(self) -> "BlockVector":
        """Deep copy (every block copied)."""
        return BlockVector([b.copy() for b in self._blocks])

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(b.size for b in self._blocks)

    @property
    def offsets(self) -> Tuple[int, ...]:
        """Flat start offset of every block (plus the total at the end)."""
        out = [0]
        for b in self._blocks:
            out.append(out[-1] + b.size)
        return tuple(out)

    @property
    def size(self) -> int:
        return sum(b.size for b in self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks)

    def __getitem__(self, i: int) -> np.ndarray:
        return self._blocks[i]

    def __setitem__(self, i: int, value: np.ndarray) -> None:
        value = np.asarray(value)
        if value.shape != self._blocks[i].shape:
            raise ValueError(
                f"block {i} has size {self._blocks[i].size}, assigned "
                f"value has shape {value.shape}")
        self._blocks[i] = value

    def _same_partition(self, other: "BlockVector") -> None:
        if self.sizes != other.sizes:
            raise ValueError(
                f"block partitions differ: {self.sizes} vs {other.sizes}")

    # ------------------------------------------------------------------
    # blockwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "BlockVector") -> "BlockVector":
        self._same_partition(other)
        return BlockVector([a + b for a, b in zip(self, other)])

    def __sub__(self, other: "BlockVector") -> "BlockVector":
        self._same_partition(other)
        return BlockVector([a - b for a, b in zip(self, other)])

    def __mul__(self, scalar: float) -> "BlockVector":
        return BlockVector([b * scalar for b in self._blocks])

    __rmul__ = __mul__

    def __neg__(self) -> "BlockVector":
        return BlockVector([-b for b in self._blocks])

    def dot(self, other: "BlockVector") -> float:
        """Inner product, accumulated blockwise."""
        self._same_partition(other)
        return float(sum(float(np.dot(a, b)) for a, b in zip(self, other)))

    def norm(self) -> float:
        """Euclidean norm of the flat vector."""
        return float(np.sqrt(self.dot(self)))

    def __repr__(self) -> str:
        return f"<BlockVector sizes={self.sizes}>"

"""Python rendering of the generated CRSD SpMV kernel.

The emitted source contains one codelet function per pattern region —
with the slab base, ``seg*NNzRS`` stride, per-diagonal ``d*mrows``
displacement and every ``Colv`` baked in as integer literals — plus a
dispatcher implementing the paper's work-group membership condition,
and the fully unrolled scatter-ELL kernel.  The source is compiled with
``compile()``/``exec`` at run time; this is the host-language analogue
of OpenCL's runtime kernel compilation that the whole design leans on.

FLOP-counting convention: ``ctx.flops`` counts executed multiply-adds
on stored slots (explicit fill zeros included — the device really
executes them); lanes predicated off by bounds masks are not counted.
The GFLOPS *metric* divides ``2·nnz`` by time, so fill work hurts, as
it should.

Each kernel is emitted twice: the per-group form (``_codelet_p0``,
``crsd_dia_kernel``, ...) runs under the sequential reference engine
(:func:`~repro.ocl.executor.launch`, one work-group per invocation),
and a ``*_batched`` form runs under
:func:`~repro.ocl.executor.launch_batched` where ``ctx.group_id`` is a
``(num_groups, 1)`` column and every statement operates on the whole
``(num_segments, mrows)`` lane grid at once.  The statement text is
deliberately identical between the two forms wherever broadcasting
makes it shape-generic; only the accumulator shapes and the per-region
flop literals (``x NRS``) differ.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.codegen.plan import GroupPlan, KernelPlan, RegionPlan
from repro.codegen.validator import validate_python_source


@dataclass
class CompiledKernel:
    """A generated-and-compiled CRSD kernel pair.

    Attributes
    ----------
    plan:
        The originating plan.
    source:
        The generated Python source (inspectable, testable).
    dia_kernel:
        ``f(ctx, dia_val, x, y)`` — the diagonal-pattern kernel
        (per-group form, for :func:`~repro.ocl.executor.launch`).
    scatter_kernel:
        ``f(ctx, scatter_colval, scatter_val, scatter_rowno, x, y)`` or
        ``None`` when the matrix has no scatter rows.
    dia_kernel_batched / scatter_kernel_batched:
        The same kernels in segment-batched form, for
        :func:`~repro.ocl.executor.launch_batched`.
    """

    plan: KernelPlan
    source: str
    dia_kernel: Callable
    scatter_kernel: Optional[Callable]
    dia_kernel_batched: Callable
    scatter_kernel_batched: Optional[Callable]


class _Writer:
    """Tiny indented source writer."""

    def __init__(self):
        self._buf = io.StringIO()
        self._level = 0

    def line(self, text: str = "") -> "_Writer":
        self._buf.write("    " * self._level + text + "\n")
        return self

    def indent(self) -> "_Writer":
        self._level += 1
        return self

    def dedent(self) -> "_Writer":
        self._level -= 1
        return self

    def getvalue(self) -> str:
        return self._buf.getvalue()


def _expected_functions(plan: KernelPlan) -> List[str]:
    """Function inventory the emitted module must define for ``plan``."""
    names = ["crsd_dia_kernel", "crsd_dia_kernel_batched"]
    for i in range(len(plan.regions)):
        names += [f"_codelet_p{i}", f"_codelet_p{i}_batched"]
    if plan.scatter.num_rows:
        names += ["crsd_scatter_kernel", "crsd_scatter_kernel_batched"]
    return names


def generate_python_kernel(plan: KernelPlan,
                           strict: bool = False) -> CompiledKernel:
    """Emit, validate and compile the Python kernel for ``plan``.

    The emitted source is always checked structurally (it must parse
    and define every codelet the plan promises, in per-group and
    batched form).  ``strict=True`` additionally runs the full static
    analyzer over the plan and both renderings, raising
    :class:`~repro.analyze.report.KernelAnalysisError` if any checker
    reports a violation — no kernel with a provable defect compiles.
    """
    src = emit_python_source(plan)
    validate_python_source(src, expected=_expected_functions(plan))
    if strict:
        # local import: repro.analyze itself analyzes this module's output
        from repro.analyze.driver import analyze_plan
        from repro.analyze.report import KernelAnalysisError

        report = analyze_plan(plan)
        if not report.ok:
            raise KernelAnalysisError(report)
    namespace: dict = {"np": np, "bisect_right": __import__("bisect").bisect_right}
    exec(compile(src, "<crsd-generated-kernel>", "exec"), namespace)
    return CompiledKernel(
        plan=plan,
        source=src,
        dia_kernel=namespace["crsd_dia_kernel"],
        scatter_kernel=namespace.get("crsd_scatter_kernel"),
        dia_kernel_batched=namespace["crsd_dia_kernel_batched"],
        scatter_kernel_batched=namespace.get("crsd_scatter_kernel_batched"),
    )


def emit_python_source(plan: KernelPlan) -> str:
    """Emit the Python source (without compiling) — used by tests and
    the inspect_codegen example."""
    w = _Writer()
    w.line("# Generated CRSD SpMV kernel (Python rendering).")
    w.line(f"# nrows={plan.nrows} ncols={plan.ncols} mrows={plan.mrows} "
           f"regions={len(plan.regions)} local_memory={plan.use_local_memory}")
    w.line()
    for region in plan.regions:
        _emit_region_codelet(w, plan, region)
    _emit_dispatcher(w, plan)
    if plan.scatter.num_rows:
        _emit_scatter_kernel(w, plan)
    # segment-batched forms (launch_batched)
    for region in plan.regions:
        _emit_region_codelet(w, plan, region, batched=True)
    _emit_dispatcher_batched(w, plan)
    if plan.scatter.num_rows:
        _emit_scatter_kernel(w, plan, batched=True)
    return w.getvalue()


# ----------------------------------------------------------------------
# region codelets
# ----------------------------------------------------------------------

def _emit_region_codelet(w: _Writer, plan: KernelPlan, region: RegionPlan,
                         batched: bool = False) -> None:
    """Emit one region codelet.

    The batched form is the same statement list over a
    ``(num_segments, mrows)`` grid: ``seg`` is a ``(NRS, 1)`` column
    (``ctx.group_id`` of a :class:`~repro.ocl.executor.BatchCtx`) and
    broadcasts through every index expression unchanged; only the
    accumulator shape and the flop literals (one call for all NRS
    segments) differ.
    """
    m = region.mrows
    suffix = "_batched" if batched else ""
    w.line(f"def _codelet_p{region.index}{suffix}(ctx, dia_val, xb, yb):")
    w.indent()
    w.line(f'"""Pattern {region.signature}: SR={region.start_row}, '
           f'NRS={region.nrs}, NNzRS={region.nnz_per_segment}."""')
    w.line("lid = ctx.lid")
    w.line(f"seg = ctx.group_id - {region.gid_base}")
    shape = f"(ctx.num_groups, {m})" if batched else str(m)
    if plan.nvec == 1:
        w.line(f"acc = np.zeros({shape}, dtype=xb.data.dtype)")
    else:
        for j in range(plan.nvec):
            w.line(f"acc{j} = np.zeros({shape}, dtype=xb.data.dtype)")
    slab = f"{region.slab_base} + seg * {region.nnz_per_segment}"
    for g in region.groups:
        if plan.nvec > 1:
            _emit_group_multivec(w, plan, region, g, slab, batched)
        elif g.kind == "AD" and plan.use_local_memory:
            _emit_ad_group_local(w, plan, region, g, slab, batched)
        else:
            _emit_group_direct(w, plan, region, g, slab, batched)
    w.line(f"row = {region.start_row} + seg * {m} + lid")
    w.line(f"ok = row < {plan.nrows}")
    if plan.nvec == 1:
        w.line(f"ctx.gstore(yb, np.minimum(row, {plan.nrows - 1}), acc, mask=ok)")
    else:
        for j in range(plan.nvec):
            w.line(
                f"ctx.gstore(yb, {j * plan.nrows} + "
                f"np.minimum(row, {plan.nrows - 1}), acc{j}, mask=ok)"
            )
    w.dedent()
    w.line()


def _flops_arg(n: int, batched: bool) -> str:
    """Per-group codelets report ``n`` flops once per work-group; the
    batched form makes one call covering all its segments."""
    return f"{n} * ctx.num_groups" if batched else str(n)


def _emit_group_multivec(
    w: _Writer, plan: KernelPlan, region: RegionPlan, g: GroupPlan, slab: str,
    batched: bool = False
) -> None:
    """SpMM body: each diagonal value loaded once, multiplied against
    every right-hand side (x held column-major, strides baked in)."""
    m = region.mrows
    cmax = plan.ncols - 1
    w.line(f"# {g.kind} group: offsets {list(g.offsets)} x {plan.nvec} vectors")
    for jj in range(g.ndiags):
        d = g.d_first + jj
        colv = g.colv[jj]
        w.line(f"v = ctx.gload(dia_val, {slab} + {d * m} + lid)")
        w.line(f"xi = {colv} + seg * {m} + lid")
        w.line(f"mx = (xi >= 0) & (xi < {plan.ncols})")
        w.line(f"xc = np.clip(xi, 0, {cmax})")
        for j in range(plan.nvec):
            w.line(f"acc{j} = acc{j} + v * ctx.gload(xb, {j * plan.ncols} + xc, mask=mx)")
        w.line(f"ctx.flops({_flops_arg(2 * m * plan.nvec, batched)})")


def _emit_ad_group_local(
    w: _Writer, plan: KernelPlan, region: RegionPlan, g: GroupPlan, slab: str,
    batched: bool = False
) -> None:
    """AD group: stage the shared x window into local memory once, then
    all member diagonals read it (Fig. 5)."""
    m = region.mrows
    n = g.ndiags
    tile_len = m + n - 1
    cmax = plan.ncols - 1
    w.line(f"# AD group: offsets {list(g.offsets)}, Colv={g.colv[0]}, "
           f"x tile of {tile_len} elements in local memory")
    w.line(f"tile = ctx.alloc_local({tile_len}, xb.data.dtype)")
    w.line(f"tbase = {g.colv[0]} + seg * {m}")
    w.line("i0 = tbase + lid")
    w.line(f"m0 = (i0 >= 0) & (i0 < {plan.ncols})")
    w.line(f"ctx.lstore(tile, lid, ctx.gload(xb, np.clip(i0, 0, {cmax}), mask=m0))")
    # wide AD groups (ndiags > mrows + 1) need more than one extra
    # staging pass: each pass fills the next mrows-sized tile slice
    for s in range(1, -(-tile_len // m)):
        extra = min(tile_len - s * m, m)
        w.line(f"i1 = tbase + {s * m} + lid")
        w.line(f"lane = lid < {extra}")
        w.line(f"m1 = lane & (i1 >= 0) & (i1 < {plan.ncols})")
        w.line(
            f"ctx.lstore(tile, np.minimum({s * m} + lid, {tile_len - 1}), "
            f"ctx.gload(xb, np.clip(i1, 0, {cmax}), mask=m1), mask=lane)"
        )
    w.line("ctx.barrier()")
    for j in range(n):
        d = g.d_first + j
        w.line(f"v = ctx.gload(dia_val, {slab} + {d * m} + lid)")
        w.line(f"acc = acc + v * ctx.lload(tile, lid + {j})")
        w.line(f"ctx.flops({_flops_arg(2 * m, batched)})")


def _emit_group_direct(
    w: _Writer, plan: KernelPlan, region: RegionPlan, g: GroupPlan, slab: str,
    batched: bool = False
) -> None:
    """NAD group (or AD with local memory disabled): every diagonal
    gathers x straight from global memory."""
    m = region.mrows
    cmax = plan.ncols - 1
    w.line(f"# {g.kind} group: offsets {list(g.offsets)}")
    for j in range(g.ndiags):
        d = g.d_first + j
        colv = g.colv[j]
        w.line(f"v = ctx.gload(dia_val, {slab} + {d * m} + lid)")
        w.line(f"xi = {colv} + seg * {m} + lid")
        w.line(f"mx = (xi >= 0) & (xi < {plan.ncols})")
        w.line(f"acc = acc + v * ctx.gload(xb, np.clip(xi, 0, {cmax}), mask=mx)")
        w.line(f"ctx.flops({_flops_arg(2 * m, batched)})")


# ----------------------------------------------------------------------
# dispatcher and scatter kernel
# ----------------------------------------------------------------------

def _emit_dispatcher(w: _Writer, plan: KernelPlan) -> None:
    """The paper's membership condition
    ``sum_{i<p} NRS_i <= group_id < sum_{i<=p} NRS_i`` as a baked
    boundary table (the OpenCL rendering shows the equivalent
    switch)."""
    bounds = []
    acc = 0
    for r in plan.regions:
        acc += r.nrs
        bounds.append(acc)
    w.line(f"_GID_BOUNDS = {tuple(bounds)!r}")
    w.line()
    w.line("def crsd_dia_kernel(ctx, dia_val, xb, yb):")
    w.indent()
    w.line('"""Diagonal-pattern part: one work-group per row segment."""')
    if not plan.regions:
        w.line("return")
        w.dedent()
        w.line()
        return
    w.line("p = bisect_right(_GID_BOUNDS, ctx.group_id)")
    for i in range(len(plan.regions)):
        kw = "if" if i == 0 else "elif"
        w.line(f"{kw} p == {i}:")
        w.indent().line(f"_codelet_p{i}(ctx, dia_val, xb, yb)").dedent()
    w.dedent()
    w.line()


def _emit_dispatcher_batched(w: _Writer, plan: KernelPlan) -> None:
    """Batched dispatcher: the region boundaries partition the group-id
    grid statically, so instead of a per-group membership test each
    region codelet runs once over its whole contiguous id range (a
    child :class:`~repro.ocl.executor.BatchCtx`).  Each child is
    finalized before the next region starts so the L2 replay keeps the
    per-group launch order."""
    w.line("def crsd_dia_kernel_batched(ctx, dia_val, xb, yb):")
    w.indent()
    w.line('"""Diagonal-pattern part, all row segments batched."""')
    if not plan.regions:
        w.line("return")
        w.dedent()
        w.line()
        return
    lo = 0
    for i, r in enumerate(plan.regions):
        hi = lo + r.nrs
        w.line(f"sub = ctx.sub({lo}, {hi})")
        w.line(f"_codelet_p{i}_batched(sub, dia_val, xb, yb)")
        w.line("sub.finalize()")
        lo = hi
    w.dedent()
    w.line()


def _emit_scatter_kernel(w: _Writer, plan: KernelPlan,
                         batched: bool = False) -> None:
    """The generated ELL kernel over scatter rows (Section II-D /
    III-B): fully unrolled over ``num_scatter_width``, column-major
    arrays so loads coalesce, and it *overwrites* y — it runs after the
    diagonal kernel and owns its rows completely.

    The batched form is text-identical except for the accumulator
    shape: ``pos``/``m``/``safe`` become grids by broadcasting, and the
    per-entry flop count already sums the active-lane mask, which
    covers all groups at once."""
    s = plan.scatter
    ls = plan.local_size
    nmax = s.num_rows - 1
    suffix = "_batched" if batched else ""
    shape = f"(ctx.num_groups, {ls})" if batched else str(ls)
    w.line(f"def crsd_scatter_kernel{suffix}(ctx, scol, sval, srow, xb, yb):")
    w.indent()
    w.line(f'"""Scatter-row ELL part: {s.num_rows} rows x {s.width} entries, '
           'unrolled."""')
    w.line(f"pos = ctx.group_id * {ls} + ctx.lid")
    w.line(f"m = pos < {s.num_rows}")
    w.line(f"safe = np.minimum(pos, {nmax})")
    if plan.nvec == 1:
        w.line(f"acc = np.zeros({shape}, dtype=xb.data.dtype)")
        for k in range(s.width):
            w.line(f"c = ctx.gload(scol, {k * s.num_rows} + safe, mask=m)")
            w.line(f"v = ctx.gload(sval, {k * s.num_rows} + safe, mask=m)")
            w.line("acc = acc + v * ctx.gload(xb, c, mask=m)")
            w.line("ctx.flops(2 * int(m.sum()))")
        w.line("r = ctx.gload(srow, safe, mask=m)")
        w.line("ctx.gstore(yb, r, acc, mask=m)")
    else:
        for j in range(plan.nvec):
            w.line(f"acc{j} = np.zeros({shape}, dtype=xb.data.dtype)")
        for k in range(s.width):
            w.line(f"c = ctx.gload(scol, {k * s.num_rows} + safe, mask=m)")
            w.line(f"v = ctx.gload(sval, {k * s.num_rows} + safe, mask=m)")
            for j in range(plan.nvec):
                w.line(f"acc{j} = acc{j} + v * ctx.gload(xb, {j * plan.ncols} + c, mask=m)")
            w.line(f"ctx.flops({2 * plan.nvec} * int(m.sum()))")
        w.line("r = ctx.gload(srow, safe, mask=m)")
        for j in range(plan.nvec):
            w.line(f"ctx.gstore(yb, {j * plan.nrows} + r, acc{j}, mask=m)")
    w.dedent()
    w.line()

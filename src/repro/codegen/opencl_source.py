"""OpenCL C rendering of the generated CRSD SpMV kernel.

This is the artifact a real GPU deployment would hand to
``clBuildProgram`` — the paper's Fig. 6 shows exactly this shape: a
``switch`` over the diagonal patterns where each ``case`` contains the
fully unrolled multiply-adds with literal index constants, the AD
groups staging their x window through ``__local`` memory behind a
``barrier``, and a second kernel processing the scatter rows.

The Python rendering (:mod:`repro.codegen.python_codelet`) is what the
simulator executes; both are driven by the same
:class:`~repro.codegen.plan.KernelPlan` so the constants cannot
disagree, and the test suite extracts the literals from this source and
checks them against :func:`repro.core.spmv.index_trace`.
"""

from __future__ import annotations

import io

from repro.codegen.plan import GroupPlan, KernelPlan, RegionPlan

_REAL = {"double": "double", "single": "float"}

_PREAMBLE = """\
// Auto-generated CRSD SpMV kernel.
// Storage: Compressed Row Segment with Diagonal-pattern (Sun et al., ICPP 2011).
// One work-group processes one row segment of {mrows} rows; the switch
// below selects the work-group's diagonal pattern, so all work-items of
// a group take the same execution path (no thread divergence).
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
"""


def generate_opencl_source(plan: KernelPlan, precision: str = "double") -> str:
    """Emit the OpenCL C program text for ``plan``."""
    real = _REAL.get(precision.lower())
    if real is None:
        raise ValueError(f"unknown precision {precision!r}")
    buf = io.StringIO()
    buf.write(_PREAMBLE.format(mrows=plan.mrows))
    buf.write("\n")
    _emit_dia_kernel(buf, plan, real)
    if plan.scatter.num_rows:
        buf.write("\n")
        _emit_scatter_kernel(buf, plan, real)
    return buf.getvalue()


def _emit_dia_kernel(buf: io.StringIO, plan: KernelPlan, real: str) -> None:
    name = "crsd_dia_spmv" if plan.nvec == 1 else "crsd_dia_spmm"
    buf.write(
        f"__kernel void {name}(__global const {real}* restrict crsd_dia_val,\n"
        f"                            __global const {real}* restrict x,\n"
        f"                            __global {real}* restrict y)\n"
        "{\n"
        "    const int group_id = get_group_id(0);\n"
        "    const int local_id = get_local_id(0);\n"
    )
    if plan.use_local_memory and plan.max_tile_len:
        buf.write(f"    __local {real} xtile[{plan.max_tile_len}];\n")
    if plan.nvec == 1:
        buf.write(f"    {real} acc = ({real})0;\n")
    else:
        for j in range(plan.nvec):
            buf.write(f"    {real} acc{j} = ({real})0;\n")
    buf.write("    int row;\n")
    if not plan.regions:
        buf.write("    (void)group_id; (void)local_id;\n}\n")
        return
    # region selection: the paper's sum_{i<p} NRS_i <= group_id < sum_{i<=p}
    buf.write("    int p;\n")
    acc = 0
    for i, r in enumerate(plan.regions):
        acc += r.nrs
        kw = "if" if i == 0 else "else if"
        buf.write(f"    {kw} (group_id < {acc}) p = {i};\n")
    buf.write(f"    else p = {len(plan.regions) - 1};\n")
    buf.write("    switch (p) {\n")
    for region in plan.regions:
        _emit_region_case(buf, plan, region, real)
    buf.write("    }\n")
    buf.write("}\n")


def _emit_region_case(
    buf: io.StringIO, plan: KernelPlan, region: RegionPlan, real: str
) -> None:
    m = region.mrows
    buf.write(f"    case {region.index}: {{ // pattern {region.signature}, "
              f"SR={region.start_row}, NRS={region.nrs}\n")
    buf.write(f"        const int seg = group_id - {region.gid_base};\n")
    slab = f"{region.slab_base} + seg * {region.nnz_per_segment}"
    tile_in_use = False
    for g in region.groups:
        if plan.nvec > 1:
            _emit_multivec_case(buf, plan, region, g, slab, real)
        elif g.kind == "AD" and plan.use_local_memory:
            _emit_ad_case(buf, plan, region, g, slab, real,
                          wait_for_reads=tile_in_use)
            tile_in_use = True
        else:
            _emit_direct_case(buf, plan, region, g, slab, real)
    buf.write(f"        row = {region.start_row} + seg * {m} + local_id;\n")
    if plan.nvec == 1:
        buf.write(f"        if (row < {plan.nrows}) y[row] = acc;\n")
    else:
        buf.write(f"        if (row < {plan.nrows}) {{\n")
        for j in range(plan.nvec):
            buf.write(f"            y[{j * plan.nrows} + row] = acc{j};\n")
        buf.write("        }\n")
    buf.write("        break; }\n")


def _emit_multivec_case(
    buf: io.StringIO, plan: KernelPlan, region: RegionPlan, g: GroupPlan,
    slab: str, real: str,
) -> None:
    """SpMM body: one slab value load feeds all ``nvec`` accumulators
    (x column-major with baked strides)."""
    m = region.mrows
    buf.write(f"        // {g.kind} group, offsets {list(g.offsets)} "
              f"x {plan.nvec} vectors\n")
    for jj in range(g.ndiags):
        d = g.d_first + jj
        colv = g.colv[jj]
        buf.write("        {\n")
        buf.write(
            f"            const {real} v = crsd_dia_val[{slab} + {d * m} + local_id];\n"
        )
        buf.write(f"            const int xi = {colv} + seg * {m} + local_id;\n")
        buf.write(f"            if (xi >= 0 && xi < {plan.ncols}) {{\n")
        for j in range(plan.nvec):
            buf.write(
                f"                acc{j} += v * x[{j * plan.ncols} + xi];\n"
            )
        buf.write("            }\n")
        buf.write("        }\n")


def _emit_ad_case(
    buf: io.StringIO, plan: KernelPlan, region: RegionPlan, g: GroupPlan,
    slab: str, real: str, wait_for_reads: bool = False,
) -> None:
    m = region.mrows
    n = g.ndiags
    tile_len = m + n - 1
    buf.write(f"        // AD group, offsets {list(g.offsets)}: stage the\n"
              f"        // shared x window into local memory (Fig. 5)\n")
    if wait_for_reads:
        # xtile is shared between the AD groups of a region; the
        # previous group's reads must complete before restaging
        buf.write("        barrier(CLK_LOCAL_MEM_FENCE);\n")
    buf.write("        {\n")
    buf.write(f"            const int tbase = {g.colv[0]} + seg * {m};\n")
    buf.write("            int xi = tbase + local_id;\n")
    buf.write(
        f"            xtile[local_id] = (xi >= 0 && xi < {plan.ncols})"
        f" ? x[xi] : ({real})0;\n"
    )
    # wide AD groups (ndiags > mrows + 1) need more than one extra
    # staging pass: each pass fills the next mrows-sized tile slice
    for s in range(1, -(-tile_len // m)):
        extra = min(tile_len - s * m, m)
        buf.write(f"            if (local_id < {extra}) {{\n")
        buf.write(f"                xi = tbase + {s * m} + local_id;\n")
        buf.write(
            f"                xtile[{s * m} + local_id] = (xi >= 0 && xi < "
            f"{plan.ncols}) ? x[xi] : ({real})0;\n"
        )
        buf.write("            }\n")
    buf.write("        }\n")
    buf.write("        barrier(CLK_LOCAL_MEM_FENCE);\n")
    for j in range(n):
        d = g.d_first + j
        buf.write(
            f"        acc += crsd_dia_val[{slab} + {d * m} + local_id]"
            f" * xtile[local_id + {j}];\n"
        )


def _emit_direct_case(
    buf: io.StringIO, plan: KernelPlan, region: RegionPlan, g: GroupPlan,
    slab: str, real: str,
) -> None:
    m = region.mrows
    buf.write(f"        // {g.kind} group, offsets {list(g.offsets)}\n")
    for j in range(g.ndiags):
        d = g.d_first + j
        colv = g.colv[j]
        buf.write("        {\n")
        buf.write(f"            const int xi = {colv} + seg * {m} + local_id;\n")
        buf.write(
            f"            const {real} xv = (xi >= 0 && xi < {plan.ncols})"
            f" ? x[xi] : ({real})0;\n"
        )
        buf.write(
            f"            acc += crsd_dia_val[{slab} + {d * m} + local_id] * xv;\n"
        )
        buf.write("        }\n")


def _emit_scatter_kernel(buf: io.StringIO, plan: KernelPlan, real: str) -> None:
    s = plan.scatter
    ls = plan.local_size
    buf.write(
        "// Scatter-row ELL kernel: executed AFTER crsd_dia_spmv; it owns its\n"
        "// rows completely and overwrites y, preserving each row's sequential\n"
        f"// floating-point order.  Unrolled over num_scatter_width = {s.width}.\n"
    )
    buf.write(
        f"__kernel void crsd_scatter_spmv(__global const int* restrict scatter_colval,\n"
        f"                                __global const {real}* restrict scatter_val,\n"
        f"                                __global const int* restrict scatter_rowno,\n"
        f"                                __global const {real}* restrict x,\n"
        f"                                __global {real}* restrict y)\n"
        "{\n"
        f"    const int i = get_group_id(0) * {ls} + get_local_id(0);\n"
        f"    if (i >= {s.num_rows}) return;\n"
        f"    {real} acc = ({real})0;\n"
    )
    for k in range(s.width):
        base = k * s.num_rows
        buf.write(
            f"    acc += scatter_val[{base} + i] * x[scatter_colval[{base} + i]];\n"
        )
    buf.write("    y[scatter_rowno[i]] = acc;\n")
    buf.write("}\n")

"""Structural validators for both generated renderings.

There is no OpenCL compiler in this environment, so the C rendering is
checked structurally instead: balanced delimiters (with comment/string
awareness), required kernel qualifiers, no unterminated statements, a
declared identifier audit for the handful of names the generator may
reference, and basic ``switch``/``case`` hygiene.  This will not catch
every type error a real ``clBuildProgram`` would, but it catches the
class of mistakes a text-based generator actually makes (unbalanced
braces, missing semicolons, stray ``case`` labels).

The Python rendering *does* have a real front end — ``ast.parse`` —
so :func:`validate_python_source` compiles the emitted codelet module
and audits the function inventory against what the plan promises
(every per-region codelet in both per-group and batched form), turning
emitter regressions into build-time failures instead of AttributeErrors
deep inside a benchmark run.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List


class OpenCLSyntaxError(ValueError):
    """Generated OpenCL source failed structural validation."""


class PythonCodeletSyntaxError(ValueError):
    """Generated Python codelet source failed validation."""


_ID = r"[A-Za-z_][A-Za-z0-9_]*"


def strip_comments(src: str) -> str:
    """Remove ``//`` and ``/* */`` comments, string-literal-aware.

    A comment marker inside a ``"..."`` or ``'...'`` literal is not a
    comment (think ``printf("a//b")``); conversely a quote inside a
    comment does not open a string.  Stripped spans are replaced by a
    space so token boundaries and positions of the surviving code stay
    stable.
    """
    out = []
    i, n = 0, len(src)
    while i < n:
        ch = src[i]
        nxt = src[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and src[i] != "\n":
                i += 1
            continue
        if ch == "/" and nxt == "*":
            end = src.find("*/", i + 2)
            stop = n if end < 0 else end + 2
            # preserve line structure for line-based diagnostics
            out.append(src.count("\n", i, stop) * "\n" or " ")
            i = stop
            continue
        if ch in ("\"", "'"):
            quote = ch
            out.append(ch)
            i += 1
            while i < n:
                out.append(src[i])
                if src[i] == "\\" and i + 1 < n:
                    out.append(src[i + 1])
                    i += 2
                    continue
                if src[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def validate_opencl_source(src: str) -> List[str]:
    """Validate; returns the list of kernel names found.

    Raises :class:`OpenCLSyntaxError` on any structural problem.
    """
    body = strip_comments(src)

    # 1. balanced delimiters
    for open_c, close_c in [("{", "}"), ("(", ")"), ("[", "]")]:
        depth = 0
        for i, ch in enumerate(body):
            if ch == open_c:
                depth += 1
            elif ch == close_c:
                depth -= 1
                if depth < 0:
                    raise OpenCLSyntaxError(
                        f"unbalanced {close_c!r} at position {i}"
                    )
        if depth != 0:
            raise OpenCLSyntaxError(f"{depth} unclosed {open_c!r}")

    # 2. kernels present, each with __global pointer params
    kernels = re.findall(rf"__kernel\s+void\s+({_ID})\s*\(", body)
    if not kernels:
        raise OpenCLSyntaxError("no __kernel function found")

    # 3. every case label lives inside a switch and ends with break
    switches = body.count("switch")
    cases = re.findall(r"case\s+\d+\s*:", body)
    if cases and not switches:
        raise OpenCLSyntaxError("case label outside any switch")
    breaks = body.count("break;")
    if cases and breaks < len(cases):
        raise OpenCLSyntaxError(
            f"{len(cases)} case labels but only {breaks} break statements"
        )

    # 4. statement lines end properly: a crude check that no line inside a
    #    function body ends with an identifier/number without ; , { } ( ) :
    for lineno, line in enumerate(body.splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if re.search(r"[A-Za-z0-9_\])]$", stripped) and not stripped.endswith(")"):
            # allowed: function signature continuation lines end with ,
            # or ) — anything else alphanumeric-final is a missing ';'
            if not re.match(rf"^#|^{_ID}\s*$", stripped):
                raise OpenCLSyntaxError(
                    f"line {lineno} looks unterminated: {stripped!r}"
                )

    # 5. barrier constants spelled correctly
    for m in re.finditer(r"barrier\s*\(([^)]*)\)", body):
        arg = m.group(1).strip()
        if arg not in ("CLK_LOCAL_MEM_FENCE", "CLK_GLOBAL_MEM_FENCE"):
            raise OpenCLSyntaxError(f"unknown barrier fence {arg!r}")

    # 6. fp64 pragma required when double is used
    if re.search(r"\bdouble\b", body) and "cl_khr_fp64" not in src:
        raise OpenCLSyntaxError("double used without cl_khr_fp64 pragma")

    return kernels


def validate_python_source(src: str,
                           expected: Iterable[str] = ()) -> List[str]:
    """Validate emitted Python codelet source; returns the module-level
    function names found.

    Checks the source actually parses (``ast.parse``), that every name
    in ``expected`` is defined as a module-level function (the caller
    derives the inventory from the plan: per-region codelets in both
    per-group and batched form, the dispatchers, the scatter kernel),
    and that no two definitions collide.  Raises
    :class:`PythonCodeletSyntaxError` on any problem.
    """
    try:
        tree = ast.parse(src)
    except SyntaxError as exc:
        raise PythonCodeletSyntaxError(
            f"emitted codelet source does not parse: {exc}"
        ) from exc
    names: List[str] = [
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    ]
    seen = set()
    for name in names:
        if name in seen:
            raise PythonCodeletSyntaxError(
                f"function {name!r} defined twice in emitted source"
            )
        seen.add(name)
    missing = [name for name in expected if name not in seen]
    if missing:
        raise PythonCodeletSyntaxError(
            "emitted source is missing expected codelet(s): "
            + ", ".join(sorted(missing))
        )
    return names

"""A small structural validator for generated OpenCL C source.

There is no OpenCL compiler in this environment, so the C rendering is
checked structurally instead: balanced delimiters (with comment/string
awareness), required kernel qualifiers, no unterminated statements, a
declared identifier audit for the handful of names the generator may
reference, and basic ``switch``/``case`` hygiene.  This will not catch
every type error a real ``clBuildProgram`` would, but it catches the
class of mistakes a text-based generator actually makes (unbalanced
braces, missing semicolons, stray ``case`` labels).
"""

from __future__ import annotations

import re
from typing import List


class OpenCLSyntaxError(ValueError):
    """Generated OpenCL source failed structural validation."""


_ID = r"[A-Za-z_][A-Za-z0-9_]*"


def strip_comments(src: str) -> str:
    """Remove // and /* */ comments (no string literals in our kernels)."""
    src = re.sub(r"/\*.*?\*/", " ", src, flags=re.S)
    src = re.sub(r"//[^\n]*", "", src)
    return src


def validate_opencl_source(src: str) -> List[str]:
    """Validate; returns the list of kernel names found.

    Raises :class:`OpenCLSyntaxError` on any structural problem.
    """
    body = strip_comments(src)

    # 1. balanced delimiters
    for open_c, close_c in [("{", "}"), ("(", ")"), ("[", "]")]:
        depth = 0
        for i, ch in enumerate(body):
            if ch == open_c:
                depth += 1
            elif ch == close_c:
                depth -= 1
                if depth < 0:
                    raise OpenCLSyntaxError(
                        f"unbalanced {close_c!r} at position {i}"
                    )
        if depth != 0:
            raise OpenCLSyntaxError(f"{depth} unclosed {open_c!r}")

    # 2. kernels present, each with __global pointer params
    kernels = re.findall(rf"__kernel\s+void\s+({_ID})\s*\(", body)
    if not kernels:
        raise OpenCLSyntaxError("no __kernel function found")

    # 3. every case label lives inside a switch and ends with break
    switches = body.count("switch")
    cases = re.findall(r"case\s+\d+\s*:", body)
    if cases and not switches:
        raise OpenCLSyntaxError("case label outside any switch")
    breaks = body.count("break;")
    if cases and breaks < len(cases):
        raise OpenCLSyntaxError(
            f"{len(cases)} case labels but only {breaks} break statements"
        )

    # 4. statement lines end properly: a crude check that no line inside a
    #    function body ends with an identifier/number without ; , { } ( ) :
    for lineno, line in enumerate(body.splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if re.search(r"[A-Za-z0-9_\])]$", stripped) and not stripped.endswith(")"):
            # allowed: function signature continuation lines end with ,
            # or ) — anything else alphanumeric-final is a missing ';'
            if not re.match(rf"^#|^{_ID}\s*$", stripped):
                raise OpenCLSyntaxError(
                    f"line {lineno} looks unterminated: {stripped!r}"
                )

    # 5. barrier constants spelled correctly
    for m in re.finditer(r"barrier\s*\(([^)]*)\)", body):
        arg = m.group(1).strip()
        if arg not in ("CLK_LOCAL_MEM_FENCE", "CLK_GLOBAL_MEM_FENCE"):
            raise OpenCLSyntaxError(f"unknown barrier fence {arg!r}")

    # 6. fp64 pragma required when double is used
    if re.search(r"\bdouble\b", body) and "cl_khr_fp64" not in src:
        raise OpenCLSyntaxError("double used without cl_khr_fp64 pragma")

    return kernels

"""Kernel plan: every constant the code generator bakes into a codelet.

The plan is the single source of truth shared by the OpenCL-C and
Python emitters.  It is derived purely from a
:class:`~repro.core.crsd.CRSDMatrix` — i.e. from the information of
Table II: per pattern region the number of row segments (NRS), the
slots per segment (NNzRS), the start row (SR), the diagonal count
(NDias) and each diagonal's column value (Colv).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.crsd import CRSDMatrix


@dataclass(frozen=True)
class GroupPlan:
    """One AD/NAD group inside a region codelet.

    Attributes
    ----------
    kind:
        "AD" or "NAD".
    d_first:
        Storage position of the group's first diagonal within the
        region (the ``d`` of the paper's location formula).
    offsets:
        The member diagonal offsets in storage order.
    colv:
        Column value of each member at the region's start row
        (``Colv_{p,d}``; may be negative, the kernel clamps).
    """

    kind: str
    d_first: int
    offsets: Tuple[int, ...]
    colv: Tuple[int, ...]

    @property
    def ndiags(self) -> int:
        return len(self.offsets)

    @property
    def tile_len_extra(self) -> int:
        """Extra x elements an AD tile needs beyond mrows (n-1)."""
        return self.ndiags - 1


@dataclass(frozen=True)
class RegionPlan:
    """One pattern region = one switch case = one codelet.

    ``gid_base`` is the paper's running sum ``sum_{i<p} NRS_i``; a
    work-group handles this region iff
    ``gid_base <= group_id < gid_base + nrs``.
    ``slab_base`` is ``sum_{i<p} NRS_i * NNzRS_i``.
    """

    index: int
    gid_base: int
    slab_base: int
    start_row: int
    nrs: int
    mrows: int
    nnz_per_segment: int
    groups: Tuple[GroupPlan, ...]
    signature: str

    @property
    def ndiags(self) -> int:
        return sum(g.ndiags for g in self.groups)

    @property
    def max_tile_len(self) -> int:
        """Largest local-memory x tile any AD group of this region needs."""
        extras = [g.tile_len_extra for g in self.groups if g.kind == "AD"]
        return (self.mrows + max(extras)) if extras else 0


@dataclass(frozen=True)
class ScatterPlan:
    """The generated ELL kernel over the scatter rows.

    The arrays are laid out column-major (entry k of all rows
    contiguous) so the generated loads coalesce; the loop over the
    ``width`` entries is fully unrolled, which the paper highlights as
    its loop-unrolling optimisation (num_scatter_width is known at
    generation time).
    """

    num_rows: int
    width: int


@dataclass(frozen=True)
class KernelPlan:
    """Complete plan for one matrix's generated SpMV kernel.

    ``nvec > 1`` generates the SpMM variant: each diagonal value is
    loaded once and multiplied against ``nvec`` right-hand sides held
    column-major (``x[j * ncols + i]``), amortising the slab traffic —
    the blocked-Krylov use case.  SpMM codelets use direct x loads
    (no AD tile): with ``nvec`` columns in flight the L2 already holds
    the shared window and per-column tiles would exhaust local memory.
    """

    nrows: int
    ncols: int
    mrows: int
    regions: Tuple[RegionPlan, ...]
    scatter: ScatterPlan
    use_local_memory: bool
    nvec: int = 1

    @property
    def num_groups(self) -> int:
        """Work-groups of the diagonal kernel (one per row segment)."""
        return sum(r.nrs for r in self.regions)

    @property
    def local_size(self) -> int:
        return self.mrows

    @property
    def max_tile_len(self) -> int:
        tiles = [r.max_tile_len for r in self.regions]
        return max(tiles) if tiles else 0


def build_plan(crsd: CRSDMatrix, use_local_memory: bool = True,
               nvec: int = 1) -> KernelPlan:
    """Derive the kernel plan from a CRSD matrix.

    ``use_local_memory=False`` disables the AD-group x-tile staging
    (ablation A1 — the wang3/wang4 discussion of Section IV-A).
    ``nvec > 1`` requests the multi-vector SpMM variant (local-memory
    staging is then disabled; see :class:`KernelPlan`).
    """
    if nvec < 1:
        raise ValueError(f"nvec must be >= 1, got {nvec}")
    if nvec > 1:
        use_local_memory = False
    regions: List[RegionPlan] = []
    gid_base = 0
    slab_base = 0
    for p, region in enumerate(crsd.regions):
        groups: List[GroupPlan] = []
        d = 0
        for g in region.pattern.groups:
            groups.append(
                GroupPlan(
                    kind=g.kind.value,
                    d_first=d,
                    offsets=tuple(g.offsets),
                    colv=tuple(region.start_row + o for o in g.offsets),
                )
            )
            d += g.ndiags
        regions.append(
            RegionPlan(
                index=p,
                gid_base=gid_base,
                slab_base=slab_base,
                start_row=region.start_row,
                nrs=region.num_segments,
                mrows=region.mrows,
                nnz_per_segment=region.nnz_per_segment,
                groups=tuple(groups),
                signature=str(region.pattern),
            )
        )
        gid_base += region.num_segments
        slab_base += region.stored_slots
    return KernelPlan(
        nrows=crsd.nrows,
        ncols=crsd.ncols,
        mrows=crsd.mrows,
        regions=tuple(regions),
        scatter=ScatterPlan(
            num_rows=crsd.num_scatter_rows, width=crsd.num_scatter_width
        ),
        use_local_memory=use_local_memory,
        nvec=nvec,
    )

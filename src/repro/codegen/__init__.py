"""Runtime code generation for CRSD SpMV (Section III-B).

OpenCL compiles kernels at run time, so after a matrix is stored in
CRSD the paper generates one *codelet* per diagonal pattern with every
index constant **baked into the source** — the kernel never reads
``matrix``/``crsd_dia_index`` from memory.  We emit the same kernel in
two renderings:

- :mod:`repro.codegen.opencl_source` — the OpenCL C string a real GPU
  would compile (the inspectable artifact; syntax-checked by
  :mod:`repro.codegen.validator`);
- :mod:`repro.codegen.python_codelet` — a semantically identical Python
  function compiled with ``compile()``/``exec`` and executed on the
  simulated device.  ``exec`` of generated source *is* runtime
  compilation in the host language, preserving the paper's
  constant-folding trick.

Both renderings are driven by the same :class:`~repro.codegen.plan.KernelPlan`,
so their index arithmetic cannot drift apart; tests additionally check
the emitted constants against :func:`repro.core.spmv.index_trace`.
"""

from repro.codegen.plan import KernelPlan, RegionPlan, GroupPlan, ScatterPlan, build_plan
from repro.codegen.python_codelet import generate_python_kernel, CompiledKernel
from repro.codegen.opencl_source import generate_opencl_source
from repro.codegen.validator import validate_opencl_source, OpenCLSyntaxError

__all__ = [
    "KernelPlan",
    "RegionPlan",
    "GroupPlan",
    "ScatterPlan",
    "build_plan",
    "generate_python_kernel",
    "CompiledKernel",
    "generate_opencl_source",
    "validate_opencl_source",
    "OpenCLSyntaxError",
]

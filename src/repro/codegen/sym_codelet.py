"""Code generation for symmetric CRSD kernels (both renderings).

One stored diagonal ``+o`` of a :class:`~repro.core.symcrsd.SymCRSDMatrix`
feeds *two* terms of the emitted codelet: the forward contribution
``A[i, i+o] * x[i+o] -> y[i]`` reads the run directly, and the mirror
contribution for full diagonal ``-o`` reads the *same* run at flat
position ``rr - o`` (the stored slot of the partner row) behind a
``si >= runbase`` guard.  Both are affine unit-lane-stride accesses, so
the existing executor, trace model and analyzer machinery apply
unchanged — the plan built here is a plain
:class:`~repro.codegen.plan.KernelPlan` whose groups carry ``kind="SYM"``.

Accumulation order is the full pattern's ascending offset order —
identical to the full-carrier codelets and the host references — which
is what makes the served ``y`` bit-identical to full CRSD.
"""

from __future__ import annotations

import bisect
import io
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.codegen.plan import GroupPlan, KernelPlan, RegionPlan, ScatterPlan
from repro.codegen.python_codelet import _Writer
from repro.codegen.validator import validate_python_source
from repro.core.symcrsd import SymCRSDMatrix

_REAL = {"double": "double", "single": "float"}

_PREAMBLE = """\
// Auto-generated symmetric CRSD SpMV kernel.
// Half storage: only diagonals with offset >= 0 are kept; each stored
// diagonal emits its forward term A[i,j]*x[j] -> y[i] and the transpose
// term A[i,j]*x[i] -> y[j] in the same pass (one slab run, two reads),
// halving the value bytes streamed for symmetric patterns.
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
"""


@dataclass
class CompiledSymKernel:
    """A generated-and-compiled symmetric CRSD kernel pair."""

    plan: KernelPlan
    source: str
    dia_kernel: Callable
    dia_kernel_batched: Callable


def full_offsets(stored: Sequence[int]) -> Tuple[int, ...]:
    """Mirror closure of the stored (non-negative) offsets, ascending —
    the accumulation order shared by kernels, model and host matvec."""
    return tuple(sorted(set(stored) | {-o for o in stored}))


def build_sym_plan(sym: SymCRSDMatrix) -> KernelPlan:
    """Derive the kernel plan for a symmetric carrier.

    ``slab_base`` indexes the diagonal-major half slab; each region has
    a single ``kind="SYM"`` group whose offsets are the *stored* ones
    (the emitters expand the mirror closure themselves).
    """
    regions: List[RegionPlan] = []
    gid_base = 0
    slab_base = 0
    for p, region in enumerate(sym.regions):
        stored = sym.stored_offsets(p)
        group = GroupPlan(
            kind="SYM",
            d_first=0,
            offsets=tuple(stored),
            colv=tuple(region.start_row + o for o in stored),
        )
        regions.append(
            RegionPlan(
                index=p,
                gid_base=gid_base,
                slab_base=slab_base,
                start_row=region.start_row,
                nrs=region.num_segments,
                mrows=region.mrows,
                nnz_per_segment=len(stored) * region.mrows,
                groups=(group,),
                signature=f"sym{region.pattern}",
            )
        )
        gid_base += region.num_segments
        slab_base += len(stored) * region.num_segments * region.mrows
    return KernelPlan(
        nrows=sym.nrows,
        ncols=sym.ncols,
        mrows=sym.mrows,
        regions=tuple(regions),
        scatter=ScatterPlan(num_rows=0, width=0),
        use_local_memory=False,
        nvec=1,
    )


def expected_sym_functions(plan: KernelPlan) -> List[str]:
    """Function inventory the emitted Python module must define."""
    names = ["sym_dia_kernel", "sym_dia_kernel_batched"]
    for i in range(len(plan.regions)):
        names += [f"_sym_codelet_p{i}", f"_sym_codelet_p{i}_batched"]
    return names


def generate_sym_python_kernel(plan: KernelPlan) -> CompiledSymKernel:
    """Emit, validate and compile the Python rendering for ``plan``."""
    src = emit_sym_python_source(plan)
    validate_python_source(src, expected=expected_sym_functions(plan))
    namespace: dict = {"np": np, "bisect_right": bisect.bisect_right}
    exec(compile(src, "<sym-crsd-generated-kernel>", "exec"), namespace)
    return CompiledSymKernel(
        plan=plan,
        source=src,
        dia_kernel=namespace["sym_dia_kernel"],
        dia_kernel_batched=namespace["sym_dia_kernel_batched"],
    )


def emit_sym_python_source(plan: KernelPlan) -> str:
    """Emit the Python rendering (without compiling)."""
    w = _Writer()
    w.line("# Generated symmetric CRSD SpMV kernel (Python rendering).")
    w.line(f"# nrows={plan.nrows} ncols={plan.ncols} mrows={plan.mrows} "
           f"regions={len(plan.regions)} half-storage=True")
    w.line()
    for region in plan.regions:
        _emit_sym_codelet(w, plan, region)
    _emit_sym_dispatcher(w, plan)
    for region in plan.regions:
        _emit_sym_codelet(w, plan, region, batched=True)
    _emit_sym_dispatcher_batched(w, plan)
    return w.getvalue()


def _flops_arg(n: int, batched: bool) -> str:
    return f"{n} * ctx.num_groups" if batched else str(n)


def _emit_sym_codelet(w: _Writer, plan: KernelPlan, region: RegionPlan,
                      batched: bool = False) -> None:
    m = region.mrows
    run = region.nrs * m
    cmax = plan.ncols - 1
    stored = region.groups[0].offsets
    suffix = "_batched" if batched else ""
    w.line(f"def _sym_codelet_p{region.index}{suffix}(ctx, sym_val, xb, yb):")
    w.indent()
    w.line(f'"""Pattern {region.signature}: SR={region.start_row}, '
           f'NRS={region.nrs}, stored offsets {list(stored)}."""')
    w.line("lid = ctx.lid")
    w.line(f"seg = ctx.group_id - {region.gid_base}")
    shape = f"(ctx.num_groups, {m})" if batched else str(m)
    w.line(f"acc = np.zeros({shape}, dtype=xb.data.dtype)")
    for off in full_offsets(stored):
        o = abs(off)
        d = stored.index(o)
        runbase = region.slab_base + d * run
        if off >= 0:
            w.line(f"# stored offset {off}")
            w.line(f"v = ctx.gload(sym_val, {runbase} + seg * {m} + lid)")
        else:
            w.line(f"# full offset {off}: mirror of stored +{o}")
            w.line(f"si = {runbase - o} + seg * {m} + lid")
            w.line(f"ms = si >= {runbase}")
            w.line(f"v = ctx.gload(sym_val, np.maximum(si, {runbase}), mask=ms)")
        w.line(f"xi = {region.start_row + off} + seg * {m} + lid")
        w.line(f"mx = (xi >= 0) & (xi < {plan.ncols})")
        w.line(f"acc = acc + v * ctx.gload(xb, np.clip(xi, 0, {cmax}), mask=mx)")
        w.line(f"ctx.flops({_flops_arg(2 * m, batched)})")
    w.line(f"row = {region.start_row} + seg * {m} + lid")
    w.line(f"ok = row < {plan.nrows}")
    w.line(f"ctx.gstore(yb, np.minimum(row, {plan.nrows - 1}), acc, mask=ok)")
    w.dedent()
    w.line()


def _emit_sym_dispatcher(w: _Writer, plan: KernelPlan) -> None:
    bounds = []
    acc = 0
    for r in plan.regions:
        acc += r.nrs
        bounds.append(acc)
    w.line(f"_SYM_GID_BOUNDS = {tuple(bounds)!r}")
    w.line()
    w.line("def sym_dia_kernel(ctx, sym_val, xb, yb):")
    w.indent()
    w.line('"""Symmetric diagonal kernel: one work-group per row segment."""')
    if not plan.regions:
        w.line("return")
        w.dedent()
        w.line()
        return
    w.line("p = bisect_right(_SYM_GID_BOUNDS, ctx.group_id)")
    for i in range(len(plan.regions)):
        kw = "if" if i == 0 else "elif"
        w.line(f"{kw} p == {i}:")
        w.indent().line(f"_sym_codelet_p{i}(ctx, sym_val, xb, yb)").dedent()
    w.dedent()
    w.line()


def _emit_sym_dispatcher_batched(w: _Writer, plan: KernelPlan) -> None:
    w.line("def sym_dia_kernel_batched(ctx, sym_val, xb, yb):")
    w.indent()
    w.line('"""Symmetric diagonal kernel, all row segments batched."""')
    if not plan.regions:
        w.line("return")
        w.dedent()
        w.line()
        return
    lo = 0
    for i, r in enumerate(plan.regions):
        hi = lo + r.nrs
        w.line(f"sub = ctx.sub({lo}, {hi})")
        w.line(f"_sym_codelet_p{i}_batched(sub, sym_val, xb, yb)")
        w.line("sub.finalize()")
        lo = hi
    w.dedent()
    w.line()


# ----------------------------------------------------------------------
# OpenCL rendering
# ----------------------------------------------------------------------

def generate_sym_opencl_source(plan: KernelPlan,
                               precision: str = "double") -> str:
    """Emit the OpenCL C program text for a symmetric plan.

    No local memory, no barriers, no loops: every case is a fully
    unrolled run of ternary-predicated multiply-adds (uniform within a
    work-group, so the divergence linter's constraints hold trivially).
    """
    real = _REAL.get(precision.lower())
    if real is None:
        raise ValueError(f"unknown precision {precision!r}")
    buf = io.StringIO()
    buf.write(_PREAMBLE)
    buf.write("\n")
    buf.write(
        f"__kernel void sym_crsd_dia_spmv(__global const {real}* restrict sym_dia_val,\n"
        f"                            __global const {real}* restrict x,\n"
        f"                            __global {real}* restrict y)\n"
        "{\n"
        "    const int group_id = get_group_id(0);\n"
        "    const int local_id = get_local_id(0);\n"
    )
    buf.write(f"    {real} acc = ({real})0;\n")
    buf.write("    int row;\n")
    if not plan.regions:
        buf.write("    (void)group_id; (void)local_id;\n}\n")
        return buf.getvalue()
    buf.write("    int p;\n")
    acc = 0
    for i, r in enumerate(plan.regions):
        acc += r.nrs
        kw = "if" if i == 0 else "else if"
        buf.write(f"    {kw} (group_id < {acc}) p = {i};\n")
    buf.write(f"    else p = {len(plan.regions) - 1};\n")
    buf.write("    switch (p) {\n")
    for region in plan.regions:
        _emit_sym_case(buf, plan, region, real)
    buf.write("    }\n")
    buf.write("}\n")
    return buf.getvalue()


def _emit_sym_case(buf: io.StringIO, plan: KernelPlan, region: RegionPlan,
                   real: str) -> None:
    m = region.mrows
    run = region.nrs * m
    stored = region.groups[0].offsets
    buf.write(f"    case {region.index}: {{ // pattern {region.signature}, "
              f"SR={region.start_row}, NRS={region.nrs}\n")
    buf.write(f"        const int seg = group_id - {region.gid_base};\n")
    for off in full_offsets(stored):
        o = abs(off)
        d = stored.index(o)
        runbase = region.slab_base + d * run
        buf.write("        {\n")
        if off >= 0:
            buf.write(f"            // stored offset {off}\n")
            buf.write(
                f"            const {real} v = sym_dia_val[{runbase} + "
                f"seg * {m} + local_id];\n"
            )
        else:
            buf.write(f"            // full offset {off}: mirror of "
                      f"stored +{o}\n")
            buf.write(
                f"            const int si = {runbase - o} + seg * {m} + "
                "local_id;\n"
            )
            buf.write(
                f"            const {real} v = (si >= {runbase})"
                f" ? sym_dia_val[si] : ({real})0;\n"
            )
        buf.write(
            f"            const int xi = {region.start_row + off} + "
            f"seg * {m} + local_id;\n"
        )
        buf.write(
            f"            const {real} xv = (xi >= 0 && xi < {plan.ncols})"
            f" ? x[xi] : ({real})0;\n"
        )
        buf.write("            acc += v * xv;\n")
        buf.write("        }\n")
    buf.write(f"        row = {region.start_row} + seg * {m} + local_id;\n")
    buf.write(f"        if (row < {plan.nrows}) y[row] = acc;\n")
    buf.write("        break; }\n")
